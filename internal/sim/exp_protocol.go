package sim

import (
	"context"
	"fmt"

	"repro/fairgossip"
)

// ProtocolOptions configures E14, the protocol-variant tolerance frontier:
// the three variants of Protocol P (live-retarget, TTL retransmission,
// k-of-q relaxed verification) against the failure modes E12/T5 showed the
// baseline cannot survive — message loss, per-round edge churn, and
// mid-voting crashes.
type ProtocolOptions struct {
	N       int
	Gamma   float64
	Trials  int
	Seed    uint64
	Workers int
	// TTL is the retransmission pass count of the retransmit rows (0 = 3).
	TTL int
	// MinVotesSlack sets the relaxed rows' threshold to q − MinVotesSlack:
	// each verifier tolerates up to MinVotesSlack per-voter violations
	// before rejecting (0 = 4).
	MinVotesSlack int
}

// DefaultProtocolOptions is the full experiment.
func DefaultProtocolOptions() ProtocolOptions {
	return ProtocolOptions{N: 128, Trials: 40, Seed: 14, TTL: 3, MinVotesSlack: 4}
}

// QuickProtocolOptions is a scaled-down variant for tests.
func QuickProtocolOptions() ProtocolOptions {
	return ProtocolOptions{N: 64, Trials: 10, Seed: 14, TTL: 3, MinVotesSlack: 4}
}

// RunE14ProtocolVariants regenerates E14: success, rounds, and message cost
// of every protocol variant across the conditions that break the baseline.
// Each variant trades away a different part of the baseline's binding
// declarations, so each rescues a different failure mode:
//
//   - live-retarget re-samples vote targets from the current neighbor set at
//     send time, so no vote is addressed to an edge that died since the
//     Commitment phase — the edge-churn failure mode (E12). It keeps strict
//     verification otherwise, so message loss (which produces spuriously
//     faulty-marked voters whose delivered votes then conflict) still kills
//     it.
//   - retransmit re-pushes every vote TTL times across TTL voting passes
//     (receivers dedup by (voter, slot)). Redundancy recovers lost votes but
//     not lost Commitment-phase pulls: one lost pull marks the pulled peer
//     faulty, and the strict verifier rejects that peer's delivered votes —
//     so loss still collapses it while costing ≈ TTL/3 more messages.
//   - relaxed keeps the baseline's schedule and structural checks but
//     tolerates up to q − MinVotes per-voter violations, accepting exactly
//     the bounded collateral damage loss inflicts — the only variant that
//     survives it.
//
// The two crash columns bracket the vulnerability window per variant: a
// crash in the middle of the Voting phase strands declared-but-unsent votes,
// which kills the two strict verifiers (baseline, retransmit) but not the
// two that weaken the missing-vote check (live-retarget never runs it,
// relaxed tolerates the stranded votes as bounded violations); a crash just
// after the variant's own last voting round — which is TTL·q rounds later
// under retransmit — leaves every declaration fulfilled and every variant
// near 100%.
func RunE14ProtocolVariants(o ProtocolOptions) []*Table {
	ttl := o.TTL
	if ttl == 0 {
		ttl = 3
	}
	slack := o.MinVotesSlack
	if slack == 0 {
		slack = 4
	}
	// Probe the schedule once per variant: q and the total round count fix
	// the relaxed threshold (q − slack) and the two crash onsets, which both
	// depend on where the variant's voting rounds end.
	probe := fairgossip.MustRunner(fairgossip.Scenario{N: o.N, Colors: 2, Gamma: o.Gamma, Seed: 1}).Params()
	q := probe.Q
	minVotes := q - slack
	if minVotes < 1 {
		minVotes = 1
	}

	variants := []struct {
		label string
		proto fairgossip.Protocol
	}{
		{"baseline", fairgossip.Protocol{}},
		{"live-retarget", fairgossip.Protocol{Variant: fairgossip.ProtocolLiveRetarget}},
		{fmt.Sprintf("retransmit ttl=%d", ttl), fairgossip.Protocol{Variant: fairgossip.ProtocolRetransmit, TTL: ttl}},
		{fmt.Sprintf("relaxed k=%d/%d", minVotes, q), fairgossip.Protocol{Variant: fairgossip.ProtocolRelaxed, MinVotes: minVotes}},
	}

	type condition struct {
		label string
		fault func(votingEnd int) fairgossip.FaultModel
		dyn   fairgossip.Dynamics
	}
	noFault := func(int) fairgossip.FaultModel { return fairgossip.FaultModel{} }
	churn := func(death float64) fairgossip.Dynamics {
		// E12's fixed stationary density π = 1/4; only the turnover varies.
		return fairgossip.Dynamics{Kind: fairgossip.DynamicsEdgeMarkovian, Birth: death / 3, Death: death}
	}
	conditions := []condition{
		{"clean", noFault, fairgossip.Dynamics{}},
		{"loss 1%", func(int) fairgossip.FaultModel { return fairgossip.FaultModel{Drop: 0.01} }, fairgossip.Dynamics{}},
		{"loss 5%", func(int) fairgossip.FaultModel { return fairgossip.FaultModel{Drop: 0.05} }, fairgossip.Dynamics{}},
		{"churn 0.1%/round", noFault, churn(0.001)},
		{"churn 0.5%/round", noFault, churn(0.005)},
		{"crash mid-voting", func(int) fairgossip.FaultModel {
			return fairgossip.FaultModel{Kind: fairgossip.FaultCrash, Alpha: 0.25, Round: q + q/2}
		}, fairgossip.Dynamics{}},
		{"crash after voting", func(votingEnd int) fairgossip.FaultModel {
			return fairgossip.FaultModel{Kind: fairgossip.FaultCrash, Alpha: 0.25, Round: votingEnd}
		}, fairgossip.Dynamics{}},
	}

	e14 := &Table{
		ID: "E14",
		Title: fmt.Sprintf("Protocol variants at n = %d: tolerance frontier across loss, churn, and crashes",
			o.N),
		Columns: []string{"variant", "condition", "success", "mean rounds", "mean msgs", "cost ×", "trials"},
	}
	baselineCleanMsgs := 0.0
	cell := 0
	for _, v := range variants {
		// The variant's first Find-Min round: every declared vote (and every
		// retransmission pass) has been sent by then.
		vp := fairgossip.MustRunner(fairgossip.Scenario{
			N: o.N, Colors: 2, Gamma: o.Gamma, Seed: 1, Protocol: v.proto,
		}).Params()
		votingEnd := vp.Rounds - 1 - 2*q
		for _, c := range conditions {
			succ, rounds, msgs := protocolCell(fairgossip.Scenario{
				N: o.N, Colors: 2, Gamma: o.Gamma,
				Fault:    c.fault(votingEnd),
				Dynamics: c.dyn,
				Protocol: v.proto,
				Seed:     ConfigSeed(o.Seed, uint64(cell)),
				Workers:  o.Workers,
			}, o.Trials)
			if baselineCleanMsgs == 0 {
				baselineCleanMsgs = msgs // first cell is baseline/clean
			}
			e14.AddRow(v.label, c.label, Pct(succ), F(rounds), F(msgs), F(msgs/baselineCleanMsgs), I(o.Trials))
			cell++
		}
	}
	e14.AddNote("cost × is mean messages relative to the baseline clean cell; churn rows share E12's stationary density 1/4, crash rows silence 25%% of nodes from the given round on")
	e14.AddNote("each variant buys back what its weakened check forgives: relaxed survives 5%% loss (bounded per-voter violations absorb both the lost votes and the spurious faulty-marks loss causes) where every strict verifier is at 0%%; live-retarget survives edge churn (votes go to live current neighbors, no dead-edge drops); retransmit pays ≈ ttl/3 more messages yet still fails under loss — redundancy cannot recover the lost Commitment pulls that poison strict verification, and its 3×-longer binding window makes churn strictly worse")
	e14.AddNote("the crash columns bracket the vulnerability window: mid-voting crashes strand declared votes, killing the strict verifiers (baseline, retransmit) but not live-retarget (no missing-vote check) or relaxed (stranded votes are bounded violations); crashes after the variant's own last voting round (ttl·q rounds later under retransmit) leave all declarations fulfilled")
	return []*Table{e14}
}

// protocolCell runs one (scenario, trials) cell and returns the success
// rate, mean round count, and mean message count.
func protocolCell(sc fairgossip.Scenario, trials int) (successRate, meanRounds, meanMsgs float64) {
	results, err := fairgossip.MustRunner(sc).Trials(context.Background(), trials)
	if err != nil {
		panic(err)
	}
	succ, rounds, msgs := 0, 0, 0
	for _, res := range results {
		if !res.Failed {
			succ++
		}
		rounds += res.Rounds
		msgs += res.Metrics.Messages
	}
	t := float64(trials)
	return float64(succ) / t, float64(rounds) / t, float64(msgs) / t
}
