package fairgossip

import (
	"context"

	"repro/internal/scenario"
)

// Params are the derived protocol parameters of a scenario — the quantities
// Protocol P computes from (n, |Σ|, γ).
type Params struct {
	// N and Colors restate the scenario's network size and |Σ|.
	N      int
	Colors int
	// Gamma is the effective phase-length constant.
	Gamma float64
	// Q is the phase length in rounds: ⌈γ·log₂ n⌉, at least 1.
	Q int
	// M is the vote-space size n³.
	M uint64
	// Rounds is the synchronous schedule length 4q+1.
	Rounds int
	// Activations is the per-agent schedule length 7q+1 of the sequential
	// adaptation.
	Activations int
}

// Runner executes a validated scenario. Construct with NewRunner; a Runner
// is immutable, safe to reuse across seeds, and safe for concurrent calls
// (each batch worker draws private pooled state).
type Runner struct {
	s     Scenario
	inner *scenario.Runner
}

// NewRunner validates s (after applying defaults) and prepares everything
// shared across its runs: protocol parameters, the seeded topology, initial
// colors, the fault model, and the coalition placement. Invalid scenarios
// yield an error wrapping ErrInvalidScenario.
func NewRunner(s Scenario) (*Runner, error) {
	inner, err := scenario.NewRunner(s.internal())
	if err != nil {
		return nil, invalidf("%s", trimInternal(err))
	}
	return &Runner{s: scenarioFromInternal(inner.Scenario()), inner: inner}, nil
}

// MustRunner is NewRunner that panics on error, for tests and examples.
func MustRunner(s Scenario) *Runner {
	r, err := NewRunner(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Scenario returns the defaults-applied scenario the runner executes.
func (r *Runner) Scenario() Scenario { return r.s }

// Params returns the derived protocol parameters.
func (r *Runner) Params() Params {
	p := r.inner.Params()
	return Params{
		N:           p.N,
		Colors:      p.NumColors,
		Gamma:       p.Gamma,
		Q:           p.Q,
		M:           p.M,
		Rounds:      p.TotalRounds(),
		Activations: p.TotalActivations(),
	}
}

// CoalitionMembers returns the deviating agents' IDs (nil for cooperative
// scenarios).
func (r *Runner) CoalitionMembers() []int { return r.inner.CoalitionMembers() }

// Run executes the scenario once at its own seed. A nil ctx is treated as
// context.Background(); a ctx already done returns its error immediately.
func (r *Runner) Run(ctx context.Context) (Result, error) {
	return r.RunSeed(ctx, r.s.Seed)
}

// RunSeed executes the scenario once at the given seed through the path its
// scheduler and coalition select.
func (r *Runner) RunSeed(ctx context.Context, seed uint64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res, err := r.inner.RunSeed(seed)
	if err != nil {
		return Result{}, err
	}
	return resultFromInternal(res), nil
}

// Trials executes a seed-batched Monte-Carlo experiment: trials independent
// runs at seeds split off the scenario seed (so results are independent of
// the worker count), parallelized across Scenario.Workers. Cancelling ctx
// stops the batch promptly mid-flight; the partial results are discarded
// and the returned error wraps context.Canceled.
func (r *Runner) Trials(ctx context.Context, trials int) ([]Result, error) {
	if trials < 0 {
		return nil, invalidf("%d trials", trials)
	}
	out := make([]Result, 0, trials)
	err := r.Stream(ctx, StreamOptions{Trials: trials}, func(_ int, res Result) {
		out = append(out, res)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamOptions configures Runner.Stream.
type StreamOptions struct {
	// Trials is the total number of Monte-Carlo trials.
	Trials int
	// Chunk is how many trials are executed (and buffered) at a time; the
	// stream's memory footprint is O(Chunk), independent of Trials. 0 picks
	// a default that keeps every worker busy.
	Chunk int
}

// Stream executes a bounded-memory Monte-Carlo experiment: exactly
// opts.Trials runs at the same seeds Trials would use, buffered opts.Chunk
// at a time, with observe invoked sequentially in trial order (observe may
// therefore accumulate running statistics — e.g. a Summary — without
// locking). Each observed Result is a detached snapshot, safe to retain.
//
// Cancelling ctx stops the stream promptly: batch workers re-check the
// context between trials, no further chunks start, and the returned error
// wraps context.Canceled (or context.DeadlineExceeded). Million-trial
// experiments run in memory constant in Trials.
func (r *Runner) Stream(ctx context.Context, opts StreamOptions, observe func(trial int, res Result)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	var inner func(int, *scenario.Result)
	if observe != nil {
		inner = func(i int, res *scenario.Result) { observe(i, resultFromInternal(*res)) }
	}
	return r.inner.StreamContext(ctx, scenario.StreamOptions{Trials: opts.Trials, Chunk: opts.Chunk}, inner)
}
