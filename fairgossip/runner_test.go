package fairgossip_test

import (
	"context"
	"errors"
	"testing"

	"repro/fairgossip"
	"repro/internal/scenario"
)

// TestPublicResultsMatchInternal pins that the public surface is a faithful
// view of the execution layer: every Result field equals the corresponding
// internal one, trial for trial.
func TestPublicResultsMatchInternal(t *testing.T) {
	pub := fairgossip.Scenario{
		N: 64, Colors: 2, Seed: 11, Workers: 2,
		Fault: fairgossip.FaultModel{Kind: fairgossip.FaultPermanent, Alpha: 0.25},
	}
	got, err := fairgossip.MustRunner(pub).Trials(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := scenario.MustRunner(scenario.Scenario{
		N: 64, Colors: 2, Seed: 11, Workers: 2,
		Fault: scenario.FaultModel{Kind: scenario.FaultPermanent, Alpha: 0.25},
	}).Trials(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d trials, want %d", len(got), len(want))
	}
	for i := range got {
		w := want[i]
		g := got[i]
		if g.Failed != w.Outcome.Failed || g.Color != int(w.Outcome.Color) ||
			g.Rounds != w.Rounds || g.HasGood != w.HasGood ||
			g.Good.Good() != w.Good.Good() || g.Good.MinVotes != w.Good.MinVotes ||
			g.Metrics.Messages != w.Metrics.Messages || g.Metrics.Bits != w.Metrics.Bits ||
			g.Metrics.MaxMessageBits != w.Metrics.MaxMessageBits {
			t.Errorf("trial %d: public %+v diverged from internal %+v", i, g, w)
		}
	}
}

// TestStreamCancelsPromptly is the cancellation pin: cancelling mid-stream
// must stop a practically-unbounded run after at most a couple of chunks,
// with the context error surfaced through errors.Is.
func TestStreamCancelsPromptly(t *testing.T) {
	r := fairgossip.MustRunner(fairgossip.Scenario{N: 32, Colors: 2, Seed: 5, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const chunk = 8
	observed := 0
	err := r.Stream(ctx, fairgossip.StreamOptions{Trials: 1 << 30, Chunk: chunk}, func(i int, res fairgossip.Result) {
		observed++
		if observed == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error = %v, want context.Canceled", err)
	}
	// The cancel lands mid-chunk; the chunk in flight is abandoned, so a
	// prompt stop observes at most the chunk that was already buffered.
	if observed > 2*chunk {
		t.Fatalf("observed %d trials after cancellation, want ≤ %d (stream did not stop promptly)", observed, 2*chunk)
	}
}

// TestTrialsHonorPreCancelledContext pins the fast path: a context that is
// already done never starts work.
func TestTrialsHonorPreCancelledContext(t *testing.T) {
	r := fairgossip.MustRunner(fairgossip.Scenario{N: 32, Colors: 2, Seed: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Trials(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("Trials error = %v, want context.Canceled", err)
	}
	if _, err := r.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// TestLossyScenario pins the message-loss axis end to end through the
// public API: lossy runs are deterministic for a seed, observably lossier
// than the fault-free setting, and still mostly succeed at a mild rate.
func TestLossyScenario(t *testing.T) {
	lossy := fairgossip.Scenario{N: 64, Colors: 2, Seed: 3, Fault: fairgossip.FaultModel{Drop: 0.1}}
	a, err := fairgossip.MustRunner(lossy).Trials(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fairgossip.MustRunner(lossy).Trials(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := fairgossip.MustRunner(fairgossip.Scenario{N: 64, Colors: 2, Seed: 3}).Trials(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var lossyUnanswered, cleanUnanswered int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d: lossy run not reproducible: %+v vs %+v", i, a[i], b[i])
		}
		lossyUnanswered += a[i].Metrics.UnansweredPulls
		cleanUnanswered += clean[i].Metrics.UnansweredPulls
	}
	if lossyUnanswered <= cleanUnanswered {
		t.Fatalf("drop=0.1 produced %d unanswered pulls vs %d without loss — loss not taking effect",
			lossyUnanswered, cleanUnanswered)
	}
}

// TestSummary pins the aggregate arithmetic the HTTP front end reports.
func TestSummary(t *testing.T) {
	var s fairgossip.Summary
	s.Add(fairgossip.Result{Rounds: 10, HasGood: true, Metrics: fairgossip.Metrics{Messages: 100, Bits: 1000}})
	s.Add(fairgossip.Result{Failed: true, Rounds: 20, Metrics: fairgossip.Metrics{Messages: 300, Bits: 3000}})
	if s.Trials != 2 || s.Successes != 1 || s.SuccessRate() != 0.5 {
		t.Fatalf("summary counts wrong: %+v", s)
	}
	if s.MinRounds != 10 || s.MaxRounds != 20 || s.MeanRounds() != 15 {
		t.Fatalf("summary rounds wrong: %+v", s)
	}
	if s.MeanMessages() != 200 || s.TotalBits != 4000 {
		t.Fatalf("summary volume wrong: %+v", s)
	}
	if !s.HasGood || s.GoodRate() != 0 {
		t.Fatalf("summary good-execution wrong: %+v", s)
	}
}

// TestLookupUnknown pins the error taxonomy of the registry.
func TestLookupUnknown(t *testing.T) {
	if _, err := fairgossip.Lookup("no-such-scenario"); !errors.Is(err, fairgossip.ErrUnknownScenario) {
		t.Fatalf("lookup error = %v, want ErrUnknownScenario", err)
	}
	if err := fairgossip.Register(fairgossip.Scenario{Name: "test-bad-public", N: 1}); !errors.Is(err, fairgossip.ErrInvalidScenario) {
		t.Fatalf("register error = %v, want ErrInvalidScenario", err)
	}
	if _, err := fairgossip.NewRunner(fairgossip.Scenario{N: 0}); !errors.Is(err, fairgossip.ErrInvalidScenario) {
		t.Fatalf("NewRunner error = %v, want ErrInvalidScenario", err)
	}
}

// TestRegisterReturnsDefaulted pins the registry contract: Lookup hands
// back the fully effective setting, not the sparse literal.
func TestRegisterReturnsDefaulted(t *testing.T) {
	if err := fairgossip.Register(fairgossip.Scenario{Name: "test-public-defaulted", N: 48}); err != nil {
		t.Fatal(err)
	}
	got, err := fairgossip.Lookup("test-public-defaulted")
	if err != nil {
		t.Fatal(err)
	}
	if got.Colors != 2 || got.Scheduler != fairgossip.SchedulerSync ||
		got.ColorInit != fairgossip.ColorsUniform || got.Topology != "complete" ||
		got.Fault.Kind != fairgossip.FaultNone || got.Gamma == 0 {
		t.Fatalf("lookup returned non-defaulted scenario: %+v", got)
	}
}
