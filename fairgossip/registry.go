package fairgossip

import (
	"fmt"

	"repro/internal/scenario"
)

// Register adds a named scenario to the process-wide registry. The scenario
// is validated and stored with defaults applied, so Lookup always returns
// the fully effective setting. Registering an invalid scenario or a
// duplicate name fails; invalid scenarios wrap ErrInvalidScenario.
//
// The registry is shared with the repository's own tooling: the built-in
// library (one scenario per experiment axis, e.g. "baseline", "churn",
// "lossy-links") is pre-registered at init time.
func Register(s Scenario) error {
	if s.Name == "" {
		return invalidf("registry scenarios need a name")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if err := scenario.Register(s.internal()); err != nil {
		return fmt.Errorf("fairgossip: %s", trimInternal(err))
	}
	return nil
}

// MustRegister is Register that panics on error, for init-time tables.
func MustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the registered scenario by name, defaults applied. An
// unregistered name yields an error wrapping ErrUnknownScenario.
func Lookup(name string) (Scenario, error) {
	s, ok := scenario.Lookup(name)
	if !ok {
		return Scenario{}, fmt.Errorf("%w: %q", ErrUnknownScenario, name)
	}
	return scenarioFromInternal(s), nil
}

// Names lists every registered scenario in sorted order.
func Names() []string { return scenario.Names() }
