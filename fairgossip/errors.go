package fairgossip

import "errors"

// The package's error taxonomy. Execution errors surface as one of these
// sentinels (match with errors.Is), a context error (context.Canceled or
// context.DeadlineExceeded, wrapped, when a run was cancelled mid-flight),
// or a plain error for internal failures.
var (
	// ErrInvalidScenario wraps every scenario-consistency failure: bad field
	// values from Validate, malformed or unversioned wire documents from
	// Decode, and rejected registrations.
	ErrInvalidScenario = errors.New("fairgossip: invalid scenario")
	// ErrUnknownScenario reports a registry Lookup of an unregistered name.
	ErrUnknownScenario = errors.New("fairgossip: unknown scenario")
)
