// Package fairgossip is the public, versioned API of the rational fair
// consensus reproduction (Clementi, Gualà, Proietti, Scornavacca, IPDPS
// 2017): declarative scenarios, a strict JSON wire format for them, and
// context-aware execution — single runs, Monte-Carlo batches, and
// bounded-memory streams that cancel promptly mid-batch.
//
// # Scenarios
//
// A Scenario is a complete declarative description of one experiment
// setting: network size, initial-opinion distribution, phase-length
// constant γ, topology, fault model (permanent / crash / churn quiescence
// plus probabilistic per-link message loss), scheduler, optional rational
// coalition, and the master seed. Zero optional fields mean the documented
// defaults; WithDefaults returns the fully effective setting and Validate
// reports the first inconsistency, wrapping ErrInvalidScenario.
//
// The topology itself may evolve: Dynamics turns the communication graph
// into a per-round graph process — every edge an independent birth/death
// Markov chain ("edge-markovian"), or a ring whose edges are re-rewired
// every round ("rewire-ring") — the graph-process analogue of churn. The
// evolution is derived from each run's seed, so dynamic runs are exactly as
// reproducible as static ones; see the Example below.
//
// The protocol itself is an axis too: Protocol selects one of three variants
// that each trade a different part of the paper's binding vote declarations
// for delivery robustness. "live-retarget" re-samples vote targets from the
// current neighbor set at send time (survives edge churn), "retransmit"
// re-pushes every vote TTL times across TTL voting passes with receiver-side
// dedup (pays ≈ TTL/3 more messages), and "relaxed" verifies only MinVotes
// of the q per-voter checks, tolerating bounded violations (survives
// probabilistic message loss). The zero value runs the paper's Algorithm 1
// unchanged.
//
// Named settings live in a process-wide registry: Register stores a
// defaults-applied scenario, Lookup retrieves it (ErrUnknownScenario when
// absent), and the built-in library covers one scenario per experiment axis
// of the reproduction (run Names to list them).
//
// # Wire format
//
// Encode and Decode convert scenarios to and from a flat, versioned JSON
// document:
//
//	{
//	  "version": 1,
//	  "name": "baseline",
//	  "n": 256,
//	  "colors": 2,
//	  ...
//	  "fault": {"kind": "none"},
//	  "scheduler": "sync",
//	  "seed": 1
//	}
//
// The codec is strict — unknown fields, trailing data, and unsupported
// versions are rejected — and normalizing: Encode writes the
// defaults-applied scenario, Decode applies defaults and validates, so
// Decode(Encode(s)) equals s.WithDefaults() for every valid s. The version
// field is this package's compatibility promise: version-1 documents keep
// decoding in every future release; new optional fields may appear, but a
// field's meaning or default never changes within version 1. The "dynamics"
// and "protocol" fields are such additions: static-topology scenarios omit
// the former and baseline-protocol scenarios the latter entirely, so every
// document written before either existed keeps both its meaning and its
// exact byte representation (the golden fixtures pin this).
//
// # Execution
//
// NewRunner validates a scenario and prepares everything its runs share.
// Run and RunSeed execute once; Trials runs a seed-split Monte-Carlo batch
// parallelized across Scenario.Workers; Stream runs an arbitrarily large
// experiment in memory bounded by the chunk size, invoking the observer in
// trial order. All of them take a Context, and the batch workers re-check
// it between trials, so cancelling a million-trial stream stops it promptly
// (the returned error wraps context.Canceled).
//
// Every Result is a detached snapshot of plain values — nothing in it
// aliases the pooled execution state reused between trials, so results are
// always safe to retain. Summary folds results into the aggregate the HTTP
// front end (cmd/serve) reports.
//
// # Simulator vs runtime
//
// Run, Trials, and Stream execute on the round-loop simulator: one
// coordinating loop applies the GOSSIP delivery semantics to plain agent
// state, which is what makes million-trial Monte-Carlo batches cheap.
// RunLive executes the same scenario on a message-passing runtime instead:
// every agent runs on its own goroutine with a bounded mailbox, and every
// push, vote, query, and reply crosses an in-process transport. The two
// engines are transcript-equivalent — under RunLive's default options the
// runtime replays the simulator's execution event for event, so
// LiveReport.Result is identical to RunSeed's for the same seed and findings
// transfer between engines. What RunLive adds is the physical layer the
// simulator only counts: wall-clock convergence time, per-message delivery
// latency quantiles (p50/p99/max), and optional transport-level fault
// injection (seed-deterministic per-message drop and latency jitter) below
// the protocol's own fault model. Use the simulator for statistics, RunLive
// for measurements; see ExampleScenario_runtime.
//
// The transport itself is a ladder, climbed one rung at a time without
// touching the protocol. LiveOptions.Transport selects the rung: "channel"
// (the default) hands each message straight to the destination mailbox;
// TransportDrop and Jitter wrap any rung in seed-deterministic fault
// injection; "unix" and "tcp" carry every delivery across a real OS socket
// as length-prefixed binary frames. Because the protocol's correctness
// barrier is the round, not the message, the scheduler dispatches each
// round's deliveries as pipelined waves and the socket rungs coalesce all
// same-peer messages of a wave into one multi-message frame answered by a
// single bitmap ack — a handful of syscalls per round instead of a
// synchronous write→ack round trip per message, with per-destination
// delivery order preserved and all results settled at the round barrier.
// Every rung is transcript-equivalent (the E16 experiment table checks it
// while pricing each rung's wall-clock and latency cost); only the
// observables change.
//
// The implementation lives under internal/; this package is the supported
// surface, and none of its exported signatures mention internal types.
package fairgossip
