package fairgossip_test

import (
	"bytes"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/fairgossip"
	"repro/internal/scenario"
)

// TestNoInternalTypesInPublicSignatures is the acceptance pin of the API
// redesign: nothing reachable from fairgossip's exported surface — struct
// fields, method parameters, method results — may mention a type from an
// internal package. The walk covers every exported type transitively, so a
// leak cannot hide behind one level of indirection.
func TestNoInternalTypesInPublicSignatures(t *testing.T) {
	roots := []reflect.Type{
		reflect.TypeOf(fairgossip.Scenario{}),
		reflect.TypeOf(fairgossip.FaultModel{}),
		reflect.TypeOf(fairgossip.Result{}),
		reflect.TypeOf(fairgossip.Metrics{}),
		reflect.TypeOf(fairgossip.GoodExecution{}),
		reflect.TypeOf(fairgossip.Params{}),
		reflect.TypeOf(fairgossip.Summary{}),
		reflect.TypeOf(fairgossip.StreamOptions{}),
		reflect.TypeOf(&fairgossip.Runner{}),
		reflect.TypeOf(fairgossip.Encode),
		reflect.TypeOf(fairgossip.Decode),
		reflect.TypeOf(fairgossip.Register),
		reflect.TypeOf(fairgossip.Lookup),
		reflect.TypeOf(fairgossip.Names),
		reflect.TypeOf(fairgossip.NewRunner),
	}
	seen := map[reflect.Type]bool{}
	var check func(typ reflect.Type, path string)
	check = func(typ reflect.Type, path string) {
		if typ == nil || seen[typ] {
			return
		}
		seen[typ] = true
		if strings.Contains(typ.PkgPath(), "internal") {
			t.Errorf("%s: internal type %v leaks into the public surface", path, typ)
			return
		}
		switch typ.Kind() {
		case reflect.Ptr, reflect.Slice, reflect.Array, reflect.Chan:
			check(typ.Elem(), path+"/elem")
		case reflect.Map:
			check(typ.Key(), path+"/key")
			check(typ.Elem(), path+"/elem")
		case reflect.Func:
			for i := 0; i < typ.NumIn(); i++ {
				check(typ.In(i), path+"/in")
			}
			for i := 0; i < typ.NumOut(); i++ {
				check(typ.Out(i), path+"/out")
			}
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				if !f.IsExported() {
					continue // unexported fields are not part of the surface
				}
				check(f.Type, path+"."+f.Name)
			}
		}
		// Exported methods are part of the surface wherever they hang.
		for i := 0; i < typ.NumMethod(); i++ {
			m := typ.Method(i)
			if m.IsExported() {
				check(m.Type, path+"."+m.Name+"()")
			}
		}
	}
	for _, root := range roots {
		check(root, root.String())
	}
}

// TestResultIsDetached pins the ownership contract structurally: a Result
// (and everything in it) is built from plain values only — no pointers,
// slices, maps, or interfaces — so it cannot alias the pooled per-worker
// state recycled between trials.
func TestResultIsDetached(t *testing.T) {
	var check func(typ reflect.Type, path string)
	check = func(typ reflect.Type, path string) {
		switch typ.Kind() {
		case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.String:
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				check(f.Type, path+"."+f.Name)
			}
		default:
			t.Errorf("%s: kind %v can alias shared memory; Result must be plain values", path, typ.Kind())
		}
	}
	check(reflect.TypeOf(fairgossip.Result{}), "Result")
	check(reflect.TypeOf(fairgossip.Summary{}), "Summary")
}

// TestScenarioFieldParity pins that the public Scenario and the internal
// execution-layer Scenario stay field-for-field identical, so the private
// conversions (and internal/bridge's) cannot silently drop an axis.
func TestScenarioFieldParity(t *testing.T) {
	fieldSet := func(typ reflect.Type) map[string]string {
		out := map[string]string{}
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			out[f.Name] = f.Type.Kind().String()
		}
		return out
	}
	pub := fieldSet(reflect.TypeOf(fairgossip.Scenario{}))
	inte := fieldSet(reflect.TypeOf(scenario.Scenario{}))
	if !reflect.DeepEqual(pub, inte) {
		t.Errorf("Scenario field sets diverged:\npublic:   %v\ninternal: %v", pub, inte)
	}
	pubF := fieldSet(reflect.TypeOf(fairgossip.FaultModel{}))
	inteF := fieldSet(reflect.TypeOf(scenario.FaultModel{}))
	if !reflect.DeepEqual(pubF, inteF) {
		t.Errorf("FaultModel field sets diverged:\npublic:   %v\ninternal: %v", pubF, inteF)
	}
	pubD := fieldSet(reflect.TypeOf(fairgossip.Dynamics{}))
	inteD := fieldSet(reflect.TypeOf(scenario.Dynamics{}))
	if !reflect.DeepEqual(pubD, inteD) {
		t.Errorf("Dynamics field sets diverged:\npublic:   %v\ninternal: %v", pubD, inteD)
	}
	pubP := fieldSet(reflect.TypeOf(fairgossip.Protocol{}))
	inteP := fieldSet(reflect.TypeOf(scenario.Protocol{}))
	if !reflect.DeepEqual(pubP, inteP) {
		t.Errorf("Protocol field sets diverged:\npublic:   %v\ninternal: %v", pubP, inteP)
	}
}

// TestExportedAPISnapshot pins the entire exported surface of the package —
// every type (with its exported fields and json tags), function, method,
// constant, and variable — against testdata/api.txt. The snapshot makes API
// evolution deliberate: a missing line is a compatibility break, an extra
// line means an addition landed without refreshing the snapshot. Regenerate
// with GOLDEN_UPDATE=1 alongside an intentional surface change.
func TestExportedAPISnapshot(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["fairgossip"]
	if !ok {
		t.Fatalf("package fairgossip not found in %v", pkgs)
	}
	d := doc.New(pkg, "repro/fairgossip", 0)

	oneLine := func(n any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, n); err != nil {
			t.Fatal(err)
		}
		return strings.Join(strings.Fields(buf.String()), " ")
	}
	var lines []string
	addFunc := func(f *doc.Func) {
		f.Decl.Body = nil
		lines = append(lines, oneLine(f.Decl))
	}
	addValues := func(kw string, vals []*doc.Value) {
		for _, v := range vals {
			for _, name := range v.Names {
				if token.IsExported(name) {
					lines = append(lines, kw+" "+name)
				}
			}
		}
	}
	addValues("const", d.Consts)
	addValues("var", d.Vars)
	for _, f := range d.Funcs {
		addFunc(f)
	}
	for _, typ := range d.Types {
		// Unexported fields of exported structs are not API: drop them so the
		// snapshot only churns when the public surface does.
		if st, ok := typ.Decl.Specs[0].(*ast.TypeSpec).Type.(*ast.StructType); ok {
			kept := st.Fields.List[:0]
			for _, fld := range st.Fields.List {
				exported := len(fld.Names) == 0 // embedded
				for _, nm := range fld.Names {
					exported = exported || nm.IsExported()
				}
				if exported {
					kept = append(kept, fld)
				}
			}
			st.Fields.List = kept
		}
		lines = append(lines, oneLine(typ.Decl))
		addValues("const", typ.Consts)
		addValues("var", typ.Vars)
		for _, f := range typ.Funcs {
			addFunc(f)
		}
		for _, m := range typ.Methods {
			addFunc(m)
		}
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "api.txt")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing API snapshot (run with GOLDEN_UPDATE=1): %v", err)
	}
	gotSet := map[string]bool{}
	for _, l := range lines {
		gotSet[l] = true
	}
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSuffix(string(wantBytes), "\n"), "\n") {
		wantSet[l] = true
	}
	for l := range wantSet {
		if !gotSet[l] {
			t.Errorf("REMOVED from the exported API (compatibility break):\n  %s", l)
		}
	}
	for l := range gotSet {
		if !wantSet[l] {
			t.Errorf("ADDED to the exported API (snapshot stale — rerun with GOLDEN_UPDATE=1):\n  %s", l)
		}
	}
}
