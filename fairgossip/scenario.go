package fairgossip

import (
	"fmt"
	"strings"

	"repro/internal/scenario"
)

// SchedulerKind selects the execution model.
type SchedulerKind string

// The two schedulers of the paper: synchronous rounds (Section 2) and the
// sequential one-agent-per-tick model (Section 4, open problem 2).
const (
	SchedulerSync  SchedulerKind = "sync"
	SchedulerAsync SchedulerKind = "async"
)

// ColorInit names the initial-opinion distribution.
type ColorInit string

// Supported initial color distributions.
const (
	// ColorsUniform assigns colors round-robin.
	ColorsUniform ColorInit = "uniform"
	// ColorsSplit gives the first ⌊SplitFraction·n⌋ nodes color 0, the rest
	// color 1.
	ColorsSplit ColorInit = "split"
	// ColorsZipf draws each node's color from a Zipf law with exponent ZipfS
	// — the skewed-opinion workload.
	ColorsZipf ColorInit = "zipf"
	// ColorsLeader gives every node its own color, turning fair consensus
	// into fair leader election.
	ColorsLeader ColorInit = "leader"
)

// FaultKind names the fault model.
type FaultKind string

// Supported fault models.
const (
	FaultNone FaultKind = "none"
	// FaultPermanent is the paper's model: the first ⌊α·n⌋ nodes are
	// quiescent from round 0.
	FaultPermanent FaultKind = "permanent"
	// FaultCrash runs the first ⌊α·n⌋ nodes honestly until round Round, then
	// silences them permanently.
	FaultCrash FaultKind = "crash"
	// FaultChurn alternates the first ⌊α·n⌋ nodes between Period rounds up
	// and Period rounds down, staggered by node ID.
	FaultChurn FaultKind = "churn"
)

// DynamicsKind names the graph process that evolves the topology per round.
type DynamicsKind string

// Supported dynamic-topology processes.
const (
	// DynamicsNone leaves the scenario's static topology in place.
	DynamicsNone DynamicsKind = "none"
	// DynamicsEdgeMarkovian evolves every potential edge as its own two-state
	// Markov chain: absent edges appear with probability Birth and present
	// edges disappear with probability Death at each round boundary. Round 0
	// is drawn from the stationary law, so the expected degree stays
	// ≈ (n−1)·Birth/(Birth+Death) throughout.
	DynamicsEdgeMarkovian DynamicsKind = "edge-markovian"
	// DynamicsRewireRing keeps the n-cycle as substrate and, each round,
	// independently replaces every node's clockwise edge by a uniformly
	// random chord with probability Beta — Watts–Strogatz rewiring resampled
	// per round instead of frozen at construction.
	DynamicsRewireRing DynamicsKind = "rewire-ring"
	// DynamicsDRegular re-matches a random (approximately) Degree-regular
	// graph from scratch every round by configuration-model stub pairing:
	// consecutive rounds are independent, so nearly the whole edge set turns
	// over each round — the maximal-churn extreme at fixed degree.
	DynamicsDRegular DynamicsKind = "d-regular"
	// DynamicsGeometric scatters n points on the unit torus, connects pairs
	// within radius √(Degree/(π·n)) (expected degree ≈ Degree), and moves
	// every point by a uniform per-axis offset in [−Jitter, Jitter] each
	// round: churn happens only along the moving radius boundary, so Jitter
	// dials it continuously from a frozen geometric graph upward while the
	// graph keeps spatial locality.
	DynamicsGeometric DynamicsKind = "geometric"
)

// Dynamics describes a per-round evolving topology — the graph-process
// analogue of churn: every node stays up, but who can talk to whom is
// redrawn at each round boundary from a seed-derived stream, so dynamic runs
// are exactly as reproducible as static ones. The zero value means a static
// topology. When active, the process replaces the scenario's Topology (which
// must be left at its default) and is only supported under the sync
// scheduler, without coalitions.
//
// Size limits: every dynamic process costs O(present edges) memory and
// O(flips) — or O(n·degree) for the re-matched generators — time per round;
// no structure anywhere is proportional to the n(n−1)/2 pair population.
// Validation therefore admits any network size the engine itself supports
// (n up to 2²⁰) and bounds only the expected number of simultaneously
// present edges — Birth/(Birth+Death)·n(n−1)/2 for the edge-Markovian
// chain, n·Degree/2 for the degree-parameterized generators — by a fixed
// adjacency budget (2²⁶ edges). At large n, lower the stationary density
// (not the churn rate): million-node networks are admissible as long as
// they are sparse. Rewire-ring dynamics are O(n) per round and carry no
// extra bound.
type Dynamics struct {
	// Kind selects the process; "" and "none" mean a static topology.
	Kind DynamicsKind `json:"kind,omitempty"`
	// Birth is the per-round appearance probability of an absent edge
	// (DynamicsEdgeMarkovian only), in [0, 1].
	Birth float64 `json:"birth,omitempty"`
	// Death is the per-round disappearance probability of a present edge
	// (DynamicsEdgeMarkovian only), in [0, 1]. Birth+Death must be positive.
	Death float64 `json:"death,omitempty"`
	// Beta is the per-round rewiring probability of each ring edge
	// (DynamicsRewireRing only), in [0, 1].
	Beta float64 `json:"beta,omitempty"`
	// Degree is the per-node degree target: the exact stub count of
	// DynamicsDRegular (2 ≤ Degree < n, n·Degree even) or the expected
	// degree of DynamicsGeometric (≥ 1). Those two kinds only.
	Degree int `json:"degree,omitempty"`
	// Jitter is the per-round, per-axis uniform displacement bound of
	// DynamicsGeometric points, in [0, 1]; 0 freezes the point set.
	// DynamicsGeometric only.
	Jitter float64 `json:"jitter,omitempty"`
}

// Active reports whether d names a real graph process (anything but the zero
// value and the explicit "none").
func (d Dynamics) Active() bool { return d.Kind != "" && d.Kind != DynamicsNone }

// ProtocolVariant names a protocol variant.
type ProtocolVariant string

// Supported protocol variants. The baseline is the paper's Algorithm 1
// unchanged; the other three trade its binding-declaration property — each
// vote is bound, up to 2q rounds in advance, to a target that may be
// unreachable by the time the vote is sent — for delivery robustness:
const (
	// ProtocolBaseline runs Algorithm 1 unchanged — the default.
	ProtocolBaseline ProtocolVariant = "baseline"
	// ProtocolLiveRetarget re-samples each vote's target from the *current*
	// neighbor set at send time. Declared values stay binding; targets become
	// advisory, so verification checks each known voter's votes against its
	// declared values regardless of target and no longer treats an absent
	// vote as proof of cheating. Tolerates edge churn and mid-Voting crashes
	// at zero message overhead, but gives up the anti-vote-dropping check.
	ProtocolLiveRetarget ProtocolVariant = "live-retarget"
	// ProtocolRetransmit keeps bindings and strict verification but sends
	// every vote TTL times: the Voting phase becomes TTL passes of q rounds
	// (the schedule grows to (3+TTL)·q+1 rounds) and receivers deduplicate
	// redeliveries by (voter, slot). Costs ≈ TTL× the Voting-phase messages.
	ProtocolRetransmit ProtocolVariant = "retransmit"
	// ProtocolRelaxed accepts a certificate when at least MinVotes of the q
	// per-voter consistency checks pass — k-of-q verification. Tolerates
	// message loss at zero overhead, but a cheating winner may drop up to
	// q − MinVotes voters' votes undetected.
	ProtocolRelaxed ProtocolVariant = "relaxed"
)

// Protocol selects the protocol variant a scenario runs and its parameters.
// The zero value (and the explicit baseline) is Algorithm 1 unchanged. Each
// variant accepts exactly its own parameters; stray fields are rejected.
// Variants are only supported under the sync scheduler, without coalitions —
// faults, loss, and dynamics are allowed (tolerating them is the point).
type Protocol struct {
	// Variant names the protocol variant; "" defaults to baseline.
	Variant ProtocolVariant `json:"variant,omitempty"`
	// TTL is the total number of times each vote is sent under
	// ProtocolRetransmit; 0 defaults to 2, and the validated range is
	// [2, 8]. ProtocolRetransmit only.
	TTL int `json:"ttl,omitempty"`
	// MinVotes is the per-voter check threshold under ProtocolRelaxed, in
	// [1, q]; it must be explicit — a default would silently weaken
	// verification. ProtocolRelaxed only.
	MinVotes int `json:"min_votes,omitempty"`
}

// Active reports whether p names a real variant (anything but the zero value
// and the explicit baseline).
func (p Protocol) Active() bool { return p.Variant != "" && p.Variant != ProtocolBaseline }

// FaultModel describes which nodes misbehave and how, plus the link-level
// loss model.
type FaultModel struct {
	// Kind selects the quiescence model; "" and "none" mean fault-free.
	Kind FaultKind `json:"kind,omitempty"`
	// Alpha is the fraction of nodes affected, in [0, 1).
	Alpha float64 `json:"alpha,omitempty"`
	// Round is the crash onset (FaultCrash only).
	Round int `json:"round,omitempty"`
	// Period is the up/down interval in rounds (FaultChurn only).
	Period int `json:"period,omitempty"`
	// Drop is the probabilistic message-loss rate, orthogonal to Kind: every
	// message crossing a link (push, pull query, pull reply) is lost
	// independently with this probability. Senders still pay the
	// communication cost, and a puller cannot distinguish a lost exchange
	// from a quiescent target. Must be in [0, 1); 0 disables loss. Not
	// supported in coalition runs.
	Drop float64 `json:"drop,omitempty"`
}

// Scenario is a complete declarative description of one experiment setting.
// The zero value of every optional field means "the default": uniform
// colors, the protocol's default γ, the complete graph, no faults, the
// synchronous scheduler, no coalition. The json tags define the version-1
// wire format (see Encode and Decode).
type Scenario struct {
	// Name identifies the scenario in the registry and in reports.
	Name string `json:"name,omitempty"`
	// N is the network size.
	N int `json:"n"`
	// Colors is |Σ|; 0 defaults to 2. Ignored (forced to N) under
	// ColorsLeader.
	Colors int `json:"colors,omitempty"`
	// ColorInit selects the initial-opinion distribution; "" = uniform.
	ColorInit ColorInit `json:"color_init,omitempty"`
	// SplitFraction is the color-0 share under ColorsSplit (default 0.5).
	SplitFraction float64 `json:"split_fraction,omitempty"`
	// ZipfS is the Zipf exponent under ColorsZipf (default 1.0).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Gamma is the phase-length constant γ; 0 defaults to the protocol's
	// default (a larger one under the async scheduler).
	Gamma float64 `json:"gamma,omitempty"`
	// Topology names the communication graph: "complete" (default), "ring",
	// "regular<d>" (random d-regular, e.g. "regular8"), or "er" (Erdős–Rényi
	// with average degree 16). Seeded graphs are built from Seed once and
	// shared by every trial.
	Topology string `json:"topology,omitempty"`
	// Dynamics optionally turns the communication graph into a per-round
	// evolving process (see Dynamics); the zero value keeps the static
	// Topology. On the wire the field is additive: Encode omits it entirely
	// for static scenarios — not via this tag (omitempty cannot elide a
	// struct) but via the codec's pointer shadow — so every pre-dynamics
	// version-1 document keeps its exact byte representation, and its
	// absence means what it always meant.
	Dynamics Dynamics `json:"dynamics"`
	// Protocol optionally selects a protocol variant (see Protocol); the zero
	// value runs the paper's Algorithm 1 unchanged. Additive on the wire the
	// same way Dynamics is: Encode omits it for baseline scenarios via the
	// codec's pointer shadow, so every pre-variant version-1 document keeps
	// its exact byte representation.
	Protocol Protocol `json:"protocol"`
	// Fault is the fault model; the zero value means fault-free.
	Fault FaultModel `json:"fault"`
	// Scheduler is sync or async; "" = sync.
	Scheduler SchedulerKind `json:"scheduler,omitempty"`
	// Coalition is the number of deviating agents; 0 = cooperative run.
	Coalition int `json:"coalition,omitempty"`
	// Deviation names the coalition's strategy; required when Coalition > 0.
	Deviation string `json:"deviation,omitempty"`
	// Seed drives all randomness; trial seeds are split off it.
	Seed uint64 `json:"seed"`
	// Workers is the trial-level parallelism for batches and the engine
	// Act-phase parallelism for single runs (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// MaxTicks bounds async runs; 0 = the adaptation's default budget.
	MaxTicks int `json:"max_ticks,omitempty"`
}

// WithDefaults returns a copy of s with every zero optional field replaced
// by its documented default — the fully effective setting.
func (s Scenario) WithDefaults() Scenario {
	return scenarioFromInternal(s.internal().WithDefaults())
}

// Validate checks the (defaults-applied) scenario for consistency. It
// returns nil or an error wrapping ErrInvalidScenario that names the first
// problem found.
func (s Scenario) Validate() error {
	if err := s.internal().Validate(); err != nil {
		return invalidf("%s", trimInternal(err))
	}
	return nil
}

// internal converts the public scenario to the execution-layer type. The
// two structs are intentionally field-for-field identical;
// internal/bridge's tests pin that correspondence.
func (s Scenario) internal() scenario.Scenario {
	return scenario.Scenario{
		Name:          s.Name,
		N:             s.N,
		Colors:        s.Colors,
		ColorInit:     scenario.ColorInit(s.ColorInit),
		SplitFraction: s.SplitFraction,
		ZipfS:         s.ZipfS,
		Gamma:         s.Gamma,
		Topology:      s.Topology,
		Dynamics: scenario.Dynamics{
			Kind:   scenario.DynamicsKind(s.Dynamics.Kind),
			Birth:  s.Dynamics.Birth,
			Death:  s.Dynamics.Death,
			Beta:   s.Dynamics.Beta,
			Degree: s.Dynamics.Degree,
			Jitter: s.Dynamics.Jitter,
		},
		Protocol: scenario.Protocol{
			Variant:  scenario.ProtocolVariant(s.Protocol.Variant),
			TTL:      s.Protocol.TTL,
			MinVotes: s.Protocol.MinVotes,
		},
		Fault: scenario.FaultModel{
			Kind:   scenario.FaultKind(s.Fault.Kind),
			Alpha:  s.Fault.Alpha,
			Round:  s.Fault.Round,
			Period: s.Fault.Period,
			Drop:   s.Fault.Drop,
		},
		Scheduler: scenario.SchedulerKind(s.Scheduler),
		Coalition: s.Coalition,
		Deviation: s.Deviation,
		Seed:      s.Seed,
		Workers:   s.Workers,
		MaxTicks:  s.MaxTicks,
	}
}

// scenarioFromInternal is the inverse of Scenario.internal.
func scenarioFromInternal(s scenario.Scenario) Scenario {
	return Scenario{
		Name:          s.Name,
		N:             s.N,
		Colors:        s.Colors,
		ColorInit:     ColorInit(s.ColorInit),
		SplitFraction: s.SplitFraction,
		ZipfS:         s.ZipfS,
		Gamma:         s.Gamma,
		Topology:      s.Topology,
		Dynamics: Dynamics{
			Kind:   DynamicsKind(s.Dynamics.Kind),
			Birth:  s.Dynamics.Birth,
			Death:  s.Dynamics.Death,
			Beta:   s.Dynamics.Beta,
			Degree: s.Dynamics.Degree,
			Jitter: s.Dynamics.Jitter,
		},
		Protocol: Protocol{
			Variant:  ProtocolVariant(s.Protocol.Variant),
			TTL:      s.Protocol.TTL,
			MinVotes: s.Protocol.MinVotes,
		},
		Fault: FaultModel{
			Kind:   FaultKind(s.Fault.Kind),
			Alpha:  s.Fault.Alpha,
			Round:  s.Fault.Round,
			Period: s.Fault.Period,
			Drop:   s.Fault.Drop,
		},
		Scheduler: SchedulerKind(s.Scheduler),
		Coalition: s.Coalition,
		Deviation: s.Deviation,
		Seed:      s.Seed,
		Workers:   s.Workers,
		MaxTicks:  s.MaxTicks,
	}
}

// trimInternal strips the internal package prefix from an error so public
// messages don't stutter ("invalid scenario: scenario: ...").
func trimInternal(err error) string {
	return strings.TrimPrefix(err.Error(), "scenario: ")
}

// invalidf builds an error wrapping ErrInvalidScenario.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidScenario, fmt.Sprintf(format, args...))
}
