package fairgossip

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
)

// Version is the wire-format version this build writes and the only one it
// accepts. Version-1 documents are a compatibility promise: they keep
// decoding in every future release, new optional fields may appear, and a
// field's meaning or default never changes within the version.
const Version = 1

// wireScenario is the flat version-1 document: the version field alongside
// the scenario's own fields.
type wireScenario struct {
	Version int `json:"version"`
	Scenario
	// Dynamics shadows the embedded scenario's field (the shallower field
	// wins both ways in encoding/json) with a pointer so a static topology is
	// omitted from the document entirely — a struct has no empty form under
	// omitempty. Absence therefore keeps its pre-dynamics meaning, and every
	// version-1 document written before the field existed stays byte-identical
	// on re-encode: the additive-only schema rule the golden fixtures pin.
	Dynamics *Dynamics `json:"dynamics,omitempty"`
	// Protocol shadows the embedded scenario's field for the same reason:
	// a baseline scenario omits it entirely, so every document written
	// before protocol variants existed stays byte-identical on re-encode.
	Protocol *Protocol `json:"protocol,omitempty"`
}

// Encode renders a scenario as its canonical version-1 JSON document. The
// scenario is validated and defaults-applied first, so the wire form always
// spells out the fully effective setting — Decode(Encode(s)) equals
// s.WithDefaults() for every valid s.
func Encode(s Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Validation guarantees an inactive Dynamics carries no parameters, so
	// omitting it loses nothing — and keeps every pre-dynamics document's
	// byte representation intact.
	w := wireScenario{Version: Version, Scenario: s.WithDefaults()}
	if w.Scenario.Dynamics.Active() {
		w.Dynamics = &w.Scenario.Dynamics
	}
	if w.Scenario.Protocol.Active() {
		w.Protocol = &w.Scenario.Protocol
	}
	return json.MarshalIndent(w, "", "  ")
}

// Decode parses a version-1 scenario document, strictly: unknown fields,
// trailing data, missing or unsupported versions, and inconsistent field
// values are all rejected with an error wrapping ErrInvalidScenario. On
// success the returned scenario is defaults-applied and validated.
func Decode(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w wireScenario
	if err := dec.Decode(&w); err != nil {
		return Scenario{}, invalidf("%v", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return Scenario{}, invalidf("trailing data after the scenario document")
	}
	if w.Version != Version {
		if w.Version == 0 {
			return Scenario{}, invalidf(`missing "version" field (this build speaks version %d)`, Version)
		}
		return Scenario{}, invalidf("unsupported version %d (this build speaks version %d)", w.Version, Version)
	}
	if w.Dynamics != nil {
		w.Scenario.Dynamics = *w.Dynamics
	}
	if w.Protocol != nil {
		w.Scenario.Protocol = *w.Protocol
	}
	s := w.Scenario.WithDefaults()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
