package fairgossip_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/fairgossip"
)

// TestRunLiveMatchesSimulator pins the public half of the equivalence
// contract: with zero options, RunLive's Result is identical to RunSeed's for
// the same scenario and seed.
func TestRunLiveMatchesSimulator(t *testing.T) {
	for _, name := range []string{"baseline", "edge-markovian", "relaxed-geometric"} {
		sc, err := fairgossip.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		r := fairgossip.MustRunner(sc)
		sim, err := r.RunSeed(context.Background(), sc.Seed)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.RunLive(context.Background(), fairgossip.LiveOptions{})
		if err != nil {
			t.Fatalf("RunLive(%s): %v", name, err)
		}
		if rep.Result != sim {
			t.Fatalf("%s: live result %+v diverged from simulator %+v", name, rep.Result, sim)
		}
		if rep.WallClock <= 0 || rep.Delivered == 0 {
			t.Fatalf("%s: live observables missing: %+v", name, rep)
		}
	}
}

// TestRunLiveRejectsUnsupported pins the scenario gate: async scheduling and
// coalition runs have no runtime mapping and must fail as invalid scenarios.
func TestRunLiveRejectsUnsupported(t *testing.T) {
	async := fairgossip.Scenario{N: 32, Colors: 2, Seed: 1, Scheduler: fairgossip.SchedulerAsync}
	if _, err := fairgossip.MustRunner(async).RunLive(context.Background(), fairgossip.LiveOptions{}); !errors.Is(err, fairgossip.ErrInvalidScenario) {
		t.Fatalf("async scenario: err = %v, want ErrInvalidScenario", err)
	}
	coalition := fairgossip.Scenario{N: 32, Colors: 2, Seed: 1, Coalition: 4, Deviation: "min-k-liar"}
	if _, err := fairgossip.MustRunner(coalition).RunLive(context.Background(), fairgossip.LiveOptions{}); !errors.Is(err, fairgossip.ErrInvalidScenario) {
		t.Fatalf("coalition scenario: err = %v, want ErrInvalidScenario", err)
	}
	plain := fairgossip.Scenario{N: 32, Colors: 2, Seed: 1}
	if _, err := fairgossip.MustRunner(plain).RunLive(context.Background(), fairgossip.LiveOptions{TransportDrop: 1.5}); !errors.Is(err, fairgossip.ErrInvalidScenario) {
		t.Fatalf("bad drop: err = %v, want ErrInvalidScenario", err)
	}
}

// TestRunLiveCancelled pins cancellation through the public surface.
func TestRunLiveCancelled(t *testing.T) {
	sc, err := fairgossip.Lookup("baseline")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fairgossip.MustRunner(sc).RunLive(ctx, fairgossip.LiveOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunLiveSocketTransports pins the transport axis through the public
// surface: unix and tcp runs produce the exact Result the channel run does
// (the transport moves bytes, never the outcome), an unknown transport is an
// invalid scenario, and the fault layer composes over a socket.
func TestRunLiveSocketTransports(t *testing.T) {
	sc, err := fairgossip.Lookup("baseline")
	if err != nil {
		t.Fatal(err)
	}
	r := fairgossip.MustRunner(sc)
	base, err := r.RunLive(context.Background(), fairgossip.LiveOptions{Transport: "channel"})
	if err != nil {
		t.Fatal(err)
	}
	for _, transport := range []string{"unix", "tcp"} {
		rep, err := r.RunLive(context.Background(), fairgossip.LiveOptions{Transport: transport})
		if err != nil {
			t.Fatalf("RunLive(%s): %v", transport, err)
		}
		if rep.Result != base.Result {
			t.Fatalf("%s result %+v diverged from channel %+v", transport, rep.Result, base.Result)
		}
		if rep.Delivered != base.Delivered {
			t.Fatalf("%s delivered %d messages, channel %d", transport, rep.Delivered, base.Delivered)
		}
	}
	if _, err := r.RunLive(context.Background(), fairgossip.LiveOptions{Transport: "carrier-pigeon"}); !errors.Is(err, fairgossip.ErrInvalidScenario) {
		t.Fatalf("bad transport: err = %v, want ErrInvalidScenario", err)
	}
	lossy, err := r.RunLive(context.Background(), fairgossip.LiveOptions{Transport: "unix", TransportDrop: 0.05})
	if err != nil {
		t.Fatalf("fault over socket: %v", err)
	}
	if lossy.Delivered == 0 {
		t.Fatal("fault layer over a socket delivered nothing")
	}
}

// TestRunLiveFaultTransport pins the lossy transport through the public
// surface: deterministic per seed, and jitter visible in the latency report.
func TestRunLiveFaultTransport(t *testing.T) {
	sc, err := fairgossip.Lookup("baseline")
	if err != nil {
		t.Fatal(err)
	}
	r := fairgossip.MustRunner(sc)
	opts := fairgossip.LiveOptions{TransportDrop: 0.05, Jitter: 50 * time.Microsecond}
	a, err := r.RunLive(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunLive(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result != b.Result {
		t.Fatalf("lossy live runs diverged: %+v vs %+v", a.Result, b.Result)
	}
	if a.LatencyP50 < 5*time.Microsecond {
		t.Fatalf("median latency %v under 50µs jitter", a.LatencyP50)
	}
}
