package fairgossip_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/fairgossip"
)

// TestCodecRoundTripRegistry pins the codec's core invariant on every
// built-in scenario: Decode(Encode(s)) == s.WithDefaults().
func TestCodecRoundTripRegistry(t *testing.T) {
	names := fairgossip.Names()
	if len(names) < 12 {
		t.Fatalf("registry suspiciously small: %v", names)
	}
	for _, name := range names {
		s, err := fairgossip.Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := fairgossip.Encode(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := fairgossip.Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if want := s.WithDefaults(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Decode(Encode(s)) = %+v, want %+v", name, got, want)
		}
	}
}

// TestCodecRoundTripSparse checks the invariant on sparse literals, where
// defaults actually do work on decode.
func TestCodecRoundTripSparse(t *testing.T) {
	for _, s := range []fairgossip.Scenario{
		{N: 64},
		{N: 64, Seed: 42},
		{N: 64, ColorInit: fairgossip.ColorsSplit},
		{N: 64, ColorInit: fairgossip.ColorsZipf, Colors: 4},
		{N: 96, Scheduler: fairgossip.SchedulerAsync},
		{N: 64, Fault: fairgossip.FaultModel{Kind: fairgossip.FaultPermanent, Alpha: 0.25}},
		{N: 64, Fault: fairgossip.FaultModel{Drop: 0.1}},
		{N: 128, Coalition: 3, Deviation: "min-k-liar"},
		{N: 64, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsEdgeMarkovian, Birth: 0.01, Death: 0.05}},
		{N: 64, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsEdgeMarkovian, Birth: 0.25, Death: 0}},
		{N: 64, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsRewireRing, Beta: 0.4}},
		{N: 64, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsRewireRing}},
		{N: 64, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsNone}},
		{N: 64, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsDRegular, Degree: 4}},
		{N: 63, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsDRegular, Degree: 6}},
		{N: 64, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsGeometric, Degree: 5, Jitter: 0.02}},
		{N: 128, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsGeometric, Degree: 3}},
		{N: 64, Fault: fairgossip.FaultModel{Drop: 0.1},
			Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsRewireRing, Beta: 0.4}},
		{N: 64, Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolBaseline}},
		{N: 64, Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolLiveRetarget}},
		{N: 64, Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolRetransmit}},
		{N: 64, Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolRetransmit, TTL: 5}},
		{N: 64, Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolRelaxed, MinVotes: 1}},
		{N: 256, Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolRelaxed, MinVotes: 24}},
		{N: 64, Fault: fairgossip.FaultModel{Drop: 0.05},
			Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolRelaxed, MinVotes: 14}},
		{N: 64, Dynamics: fairgossip.Dynamics{Kind: fairgossip.DynamicsEdgeMarkovian, Birth: 0.01, Death: 0.05},
			Protocol: fairgossip.Protocol{Variant: fairgossip.ProtocolLiveRetarget}},
	} {
		data, err := fairgossip.Encode(s)
		if err != nil {
			t.Fatalf("%+v: encode: %v", s, err)
		}
		got, err := fairgossip.Decode(data)
		if err != nil {
			t.Fatalf("%+v: decode: %v", s, err)
		}
		if want := s.WithDefaults(); !reflect.DeepEqual(got, want) {
			t.Errorf("Decode(Encode(%+v)) = %+v, want %+v", s, got, want)
		}
	}
}

// TestDecodeStrictness pins the rejection side of the codec: unknown
// fields, bad versions, trailing data, malformed JSON, and inconsistent
// values all fail with ErrInvalidScenario.
func TestDecodeStrictness(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"unknown top-level field", `{"version":1,"n":64,"seed":1,"bogus":3}`, "bogus"},
		{"unknown fault field", `{"version":1,"n":64,"seed":1,"fault":{"kindd":"crash"}}`, "kindd"},
		{"missing version", `{"n":64,"seed":1}`, "version"},
		{"future version", `{"version":2,"n":64,"seed":1}`, "unsupported version 2"},
		{"trailing data", `{"version":1,"n":64,"seed":1} {}`, "trailing"},
		{"not json", `not a scenario`, "invalid"},
		{"wrong field type", `{"version":1,"n":"sixty-four","seed":1}`, "cannot unmarshal"},
		{"negative seed", `{"version":1,"n":64,"seed":-1}`, "cannot unmarshal"},
		{"invalid n", `{"version":1,"n":1,"seed":1}`, "out of range"},
		{"invalid drop", `{"version":1,"n":64,"seed":1,"fault":{"drop":1.5}}`, "drop probability"},
		{"unknown color init", `{"version":1,"n":64,"seed":1,"color_init":"striped"}`, "color init"},
		{"unknown fault kind", `{"version":1,"n":64,"seed":1,"fault":{"kind":"byzantine"}}`, "fault kind"},
		{"unknown dynamics field", `{"version":1,"n":64,"seed":1,"dynamics":{"kindd":"rewire-ring"}}`, "kindd"},
		{"unknown dynamics kind", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"teleport"}}`, "dynamics kind"},
		{"dynamics rates without kind", `{"version":1,"n":64,"seed":1,"dynamics":{"birth":0.5,"death":0.2}}`, "need a kind"},
		{"frozen edge chain", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"edge-markovian"}}`, "birth + death"},
		{"bad edge death", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"edge-markovian","birth":0.1,"death":2}}`, "death"},
		{"bad rewire beta", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"rewire-ring","beta":-0.5}}`, "rewiring"},
		{"dynamics over static topology", `{"version":1,"n":64,"seed":1,"topology":"ring","dynamics":{"kind":"rewire-ring","beta":0.2}}`, "leave topology"},
		{"dynamics under async", `{"version":1,"n":64,"seed":1,"scheduler":"async","dynamics":{"kind":"rewire-ring","beta":0.2}}`, "sync scheduler"},
		{"degree under edge-markovian", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"edge-markovian","birth":0.1,"death":0.1,"degree":4}}`, "degree/jitter"},
		{"jitter without kind", `{"version":1,"n":64,"seed":1,"dynamics":{"jitter":0.1}}`, "degree/jitter"},
		{"d-regular missing degree", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"d-regular"}}`, "degree"},
		{"d-regular stray rate", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"d-regular","degree":4,"birth":0.1}}`, "only a degree"},
		{"d-regular odd product", `{"version":1,"n":63,"seed":1,"dynamics":{"kind":"d-regular","degree":3}}`, "even"},
		{"geometric bad jitter", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"geometric","degree":5,"jitter":1.5}}`, "jitter"},
		{"geometric too dense", `{"version":1,"n":64,"seed":1,"dynamics":{"kind":"geometric","degree":63}}`, "radius"},
		{"unknown protocol field", `{"version":1,"n":64,"seed":1,"protocol":{"variantt":"relaxed"}}`, "variantt"},
		{"unknown protocol variant", `{"version":1,"n":64,"seed":1,"protocol":{"variant":"paxos"}}`, "protocol variant"},
		{"protocol params without variant", `{"version":1,"n":64,"seed":1,"protocol":{"ttl":3}}`, "need a variant"},
		{"live-retarget stray param", `{"version":1,"n":64,"seed":1,"protocol":{"variant":"live-retarget","ttl":3}}`, "takes no parameters"},
		{"retransmit stray min-votes", `{"version":1,"n":64,"seed":1,"protocol":{"variant":"retransmit","min_votes":5}}`, "belongs to the relaxed protocol"},
		{"retransmit ttl out of range", `{"version":1,"n":64,"seed":1,"protocol":{"variant":"retransmit","ttl":99}}`, "ttl 99"},
		{"relaxed stray ttl", `{"version":1,"n":64,"seed":1,"protocol":{"variant":"relaxed","min_votes":5,"ttl":2}}`, "belongs to the retransmit protocol"},
		{"relaxed missing min-votes", `{"version":1,"n":64,"seed":1,"protocol":{"variant":"relaxed"}}`, "min-votes"},
		{"relaxed min-votes over q", `{"version":1,"n":64,"seed":1,"protocol":{"variant":"relaxed","min_votes":999}}`, "min-votes"},
		{"protocol under async", `{"version":1,"n":64,"seed":1,"scheduler":"async","protocol":{"variant":"live-retarget"}}`, "sync scheduler"},
		{"protocol with coalition", `{"version":1,"n":128,"seed":1,"coalition":3,"deviation":"min-k-liar","protocol":{"variant":"relaxed","min_votes":5}}`, "coalition"},
	}
	for _, tc := range cases {
		_, err := fairgossip.Decode([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: decode accepted %s", tc.name, tc.doc)
			continue
		}
		if !errors.Is(err, fairgossip.ErrInvalidScenario) {
			t.Errorf("%s: error %v does not wrap ErrInvalidScenario", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestEncodeRejectsInvalid pins that the canonical wire form only ever
// carries valid scenarios.
func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := fairgossip.Encode(fairgossip.Scenario{N: 1}); !errors.Is(err, fairgossip.ErrInvalidScenario) {
		t.Fatalf("encode of invalid scenario: %v", err)
	}
}

// TestGoldenWireFixtures pins the exact version-1 byte representation of
// every built-in scenario. A diff here means the wire format changed —
// which, within version 1, must only ever happen by adding fields whose
// absence keeps old documents decoding identically. Regenerate with
// GOLDEN_UPDATE=1 only alongside a deliberate, compatible schema addition.
func TestGoldenWireFixtures(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	update := os.Getenv("GOLDEN_UPDATE") != ""
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	fixtures := map[string]bool{}
	for _, name := range fairgossip.Names() {
		fixtures[name+".json"] = true
		s, err := fairgossip.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fairgossip.Encode(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got = append(got, '\n')
		path := filepath.Join(dir, name+".json")
		if update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden fixture (run with GOLDEN_UPDATE=1): %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: wire form drifted from golden fixture:\ngot:\n%s\nwant:\n%s", name, got, want)
		}
	}
	// Stale fixtures are as suspicious as missing ones.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !fixtures[e.Name()] {
			t.Errorf("stale fixture %s has no registered scenario", e.Name())
		}
	}
}

// legacyFixtures lists every scenario registered before the dynamics axis
// existed — the 13 fixtures whose byte representation the additive-only
// schema rule freezes.
var legacyFixtures = []string{
	"adversary-min-k", "baseline", "churn", "crash-after-voting",
	"crash-mid-voting", "expander", "faulty-third", "leader-election",
	"lossy-links", "ring", "sequential", "split-70-30", "zipf-skew",
}

// TestDynamicsSchemaIsAdditive is the compatibility proof for the dynamics
// field: (1) every one of the 13 pre-dynamics fixtures still exists and does
// not mention the new field — re-encoding them cannot have changed a byte
// (TestGoldenWireFixtures pins the bytes themselves); (2) decoding such a
// document yields an inactive, defaults-applied Dynamics, i.e. absence still
// means exactly what it meant before the field existed; (3) only the new
// dynamic builtins carry the field.
func TestDynamicsSchemaIsAdditive(t *testing.T) {
	for _, name := range legacyFixtures {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
		if err != nil {
			t.Fatalf("%s: pre-dynamics fixture vanished: %v", name, err)
		}
		if strings.Contains(string(data), "dynamics") {
			t.Errorf("%s: pre-dynamics fixture mentions the dynamics field — the schema change was not additive", name)
		}
		s, err := fairgossip.Decode(data)
		if err != nil {
			t.Fatalf("%s: pre-dynamics document no longer decodes: %v", name, err)
		}
		if s.Dynamics.Active() {
			t.Errorf("%s: absent dynamics decoded as active %+v", name, s.Dynamics)
		}
		if s.Dynamics.Kind != fairgossip.DynamicsNone {
			t.Errorf("%s: absent dynamics not defaults-applied: %+v", name, s.Dynamics)
		}
	}
	for _, name := range []string{"edge-markovian", "rewire-ring"} {
		s, err := fairgossip.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := fairgossip.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), `"dynamics"`) {
			t.Errorf("%s: dynamic builtin encodes without the dynamics field:\n%s", name, data)
		}
		// The degree/jitter fields rode in with the implicit sparse
		// generators. omitempty keeps them out of every rate-parameterised
		// document, so these two fixtures were frozen by that addition too.
		for _, field := range []string{`"degree"`, `"jitter"`} {
			if strings.Contains(string(data), field) {
				t.Errorf("%s: rate-parameterised builtin encodes the %s field — the schema change was not additive:\n%s", name, field, data)
			}
		}
	}
	for _, name := range []string{"regular-rematch", "geometric-torus"} {
		s, err := fairgossip.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := fairgossip.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), `"degree"`) {
			t.Errorf("%s: sparse-generator builtin encodes without the degree field:\n%s", name, data)
		}
	}
}

// preProtocolFixtures lists every scenario registered before the protocol
// axis existed — the 13 pre-dynamics fixtures plus the 4 dynamic builtins,
// all 17 of whose byte representations the additive-only schema rule
// freezes.
var preProtocolFixtures = append(append([]string{}, legacyFixtures...),
	"edge-markovian", "rewire-ring", "regular-rematch", "geometric-torus")

// TestProtocolSchemaIsAdditive is the compatibility proof for the protocol
// field, exactly parallel to TestDynamicsSchemaIsAdditive: (1) none of the
// 17 pre-protocol fixtures mentions the new field — re-encoding them cannot
// have changed a byte (TestGoldenWireFixtures pins the bytes themselves);
// (2) decoding such a document yields an inactive, defaults-applied
// Protocol, i.e. absence still means the paper's baseline protocol; (3) only
// the new variant builtins carry the field.
func TestProtocolSchemaIsAdditive(t *testing.T) {
	if len(preProtocolFixtures) != 17 {
		t.Fatalf("pre-protocol fixture list has %d entries, want 17", len(preProtocolFixtures))
	}
	for _, name := range preProtocolFixtures {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
		if err != nil {
			t.Fatalf("%s: pre-protocol fixture vanished: %v", name, err)
		}
		if strings.Contains(string(data), "protocol") {
			t.Errorf("%s: pre-protocol fixture mentions the protocol field — the schema change was not additive", name)
		}
		s, err := fairgossip.Decode(data)
		if err != nil {
			t.Fatalf("%s: pre-protocol document no longer decodes: %v", name, err)
		}
		if s.Protocol.Active() {
			t.Errorf("%s: absent protocol decoded as active %+v", name, s.Protocol)
		}
		if s.Protocol.Variant != fairgossip.ProtocolBaseline {
			t.Errorf("%s: absent protocol not defaults-applied: %+v", name, s.Protocol)
		}
	}
	for _, name := range []string{"live-retarget-churn", "retransmit-lossy", "relaxed-lossy"} {
		s, err := fairgossip.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := fairgossip.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), `"protocol"`) {
			t.Errorf("%s: variant builtin encodes without the protocol field:\n%s", name, data)
		}
	}
	// Parameters stay scoped to their variant on the wire too: omitempty
	// keeps ttl out of relaxed documents and min_votes out of retransmit
	// ones, so adding either parameter froze the other builtins' bytes.
	for name, stray := range map[string]string{
		"live-retarget-churn": `"ttl"`, "retransmit-lossy": `"min_votes"`, "relaxed-lossy": `"ttl"`,
	} {
		s, _ := fairgossip.Lookup(name)
		data, err := fairgossip.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), stray) {
			t.Errorf("%s: builtin encodes the %s field of another variant:\n%s", name, stray, data)
		}
	}
}

// TestGoldenFixturesDecode makes each committed fixture double as a
// compatibility corpus: every one must decode to the registered scenario.
func TestGoldenFixturesDecode(t *testing.T) {
	for _, name := range fairgossip.Names() {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := fairgossip.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := fairgossip.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: fixture decodes to %+v, want %+v", name, got, want)
		}
	}
}
