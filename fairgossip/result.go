package fairgossip

import (
	"fmt"

	"repro/internal/scenario"
)

// Metrics is the communication accounting of one execution: message and bit
// totals over every link crossing, the largest single message, and the
// push/pull operation counts.
type Metrics struct {
	// Rounds is the number of accounted rounds (ticks under async).
	Rounds int
	// Messages counts every message that crossed a link, including lost ones
	// — the sender pays whether or not delivery succeeds.
	Messages int
	// Bits is the total wire volume of those messages.
	Bits int64
	// MaxMessageBits is the largest single message (the paper's O(log² n)
	// bound is on this).
	MaxMessageBits int
	// Pushes and Pulls count active operations; UnansweredPulls are pulls
	// whose target was quiescent, refused, or whose exchange was lost.
	Pushes          int
	Pulls           int
	UnansweredPulls int
}

// GoodExecution is the Definition-2 check of one cooperative synchronous
// run: per-agent vote-count bounds, distinct lottery values, and
// certificate agreement.
type GoodExecution struct {
	VoteLowerOK  bool // every active agent got ≥ expected/4 votes
	VoteUpperOK  bool // every active agent got ≤ 4·expected votes
	DistinctK    bool // the k lowest lottery values are distinct
	CertsAgree   bool // all verifiers accept the same certificate
	MinVotes     int  // smallest vote count over active agents
	MaxVotes     int  // largest vote count over active agents
	ActiveAgents int
}

// Good reports whether all Definition-2 properties hold.
func (g GoodExecution) Good() bool {
	return g.VoteLowerOK && g.VoteUpperOK && g.DistinctK && g.CertsAgree
}

// Result is the outcome of one scenario execution — a detached snapshot of
// plain values. Nothing in a Result aliases the pooled per-worker state the
// batched paths recycle between trials, so results from Run, Trials, and
// Stream alike are always safe to retain, compare, and serialize.
type Result struct {
	// Failed reports the ⊥ outcome: some active agent failed, disagreed, or
	// never decided. When false, Color is the agreed color.
	Failed bool
	Color  int
	// Rounds is the synchronous round count, or the tick count under the
	// async scheduler.
	Rounds int
	// Metrics is the execution's communication accounting.
	Metrics Metrics
	// Good is the Definition-2 check; valid only when HasGood (cooperative
	// synchronous runs).
	Good    GoodExecution
	HasGood bool
	// CoalitionColorWon reports whether a coalition member's color won
	// (coalition runs only).
	CoalitionColorWon bool
}

// Success reports whether the execution reached consensus.
func (r Result) Success() bool { return !r.Failed }

// String renders the result compactly.
func (r Result) String() string {
	if r.Failed {
		return fmt.Sprintf("⊥ after %d rounds", r.Rounds)
	}
	return fmt.Sprintf("color(%d) in %d rounds", r.Color, r.Rounds)
}

// resultFromInternal snapshots an execution-layer result into the detached
// public form. The internal Agents field is deliberately not carried over:
// it may alias pooled memory, and the public contract is alias-free.
func resultFromInternal(res scenario.Result) Result {
	return Result{
		Failed: res.Outcome.Failed,
		Color:  int(res.Outcome.Color),
		Rounds: res.Rounds,
		Metrics: Metrics{
			Rounds:          res.Metrics.Rounds,
			Messages:        res.Metrics.Messages,
			Bits:            res.Metrics.Bits,
			MaxMessageBits:  res.Metrics.MaxMessageBits,
			Pushes:          res.Metrics.Pushes,
			Pulls:           res.Metrics.Pulls,
			UnansweredPulls: res.Metrics.UnansweredPulls,
		},
		Good: GoodExecution{
			VoteLowerOK:  res.Good.VoteLowerOK,
			VoteUpperOK:  res.Good.VoteUpperOK,
			DistinctK:    res.Good.DistinctK,
			CertsAgree:   res.Good.CertsAgree,
			MinVotes:     res.Good.MinVotes,
			MaxVotes:     res.Good.MaxVotes,
			ActiveAgents: res.Good.ActiveAgents,
		},
		HasGood:           res.HasGood,
		CoalitionColorWon: res.CoalitionColorWon,
	}
}

// Summary folds results into the aggregate a Monte-Carlo experiment
// reports. The zero value is ready to use; Add it one Result at a time (it
// is not safe for concurrent use — Stream's in-order observer is).
type Summary struct {
	Trials         int
	Successes      int
	GoodExecutions int
	// HasGood reports whether any folded result carried a Definition-2
	// check; GoodExecutions is meaningful only then.
	HasGood       bool
	CoalitionWins int
	MinRounds     int
	MaxRounds     int
	TotalRounds   int64
	TotalMessages int64
	TotalBits     int64
}

// Add folds one result into the summary.
func (s *Summary) Add(r Result) {
	if s.Trials == 0 || r.Rounds < s.MinRounds {
		s.MinRounds = r.Rounds
	}
	if r.Rounds > s.MaxRounds {
		s.MaxRounds = r.Rounds
	}
	s.Trials++
	if r.Success() {
		s.Successes++
	}
	if r.HasGood {
		s.HasGood = true
		if r.Good.Good() {
			s.GoodExecutions++
		}
	}
	if r.CoalitionColorWon {
		s.CoalitionWins++
	}
	s.TotalRounds += int64(r.Rounds)
	s.TotalMessages += int64(r.Metrics.Messages)
	s.TotalBits += r.Metrics.Bits
}

// SuccessRate is the fraction of successful trials (0 when empty).
func (s Summary) SuccessRate() float64 { return s.rate(s.Successes) }

// GoodRate is the fraction of good executions (0 when empty or !HasGood).
func (s Summary) GoodRate() float64 { return s.rate(s.GoodExecutions) }

// CoalitionWinRate is the fraction of trials a coalition color won.
func (s Summary) CoalitionWinRate() float64 { return s.rate(s.CoalitionWins) }

// MeanRounds is the mean round (or tick) count (0 when empty).
func (s Summary) MeanRounds() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.TotalRounds) / float64(s.Trials)
}

// MeanMessages is the mean message count (0 when empty).
func (s Summary) MeanMessages() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.TotalMessages) / float64(s.Trials)
}

func (s Summary) rate(count int) float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(count) / float64(s.Trials)
}
