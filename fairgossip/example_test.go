package fairgossip_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"repro/fairgossip"
)

// A single run: declare the setting, execute it once, inspect the detached
// result.
func ExampleRunner_Run() {
	runner, err := fairgossip.NewRunner(fairgossip.Scenario{
		N:             64,
		Colors:        2,
		ColorInit:     fairgossip.ColorsSplit,
		SplitFraction: 0.75,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := runner.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	p := runner.Params()
	fmt.Printf("schedule: 4q+1 = %d rounds (q = %d)\n", p.Rounds, p.Q)
	fmt.Printf("outcome: %s, good execution: %v\n", res, res.Good.Good())
	// Output:
	// schedule: 4q+1 = 73 rounds (q = 18)
	// outcome: color(0) in 73 rounds, good execution: true
}

// A Monte-Carlo batch: run a registered scenario many times and fold the
// results into a Summary.
func ExampleRunner_Trials() {
	sc, err := fairgossip.Lookup("baseline")
	if err != nil {
		log.Fatal(err)
	}
	sc.N = 64 // shrink the registered setting for a quick experiment
	results, err := fairgossip.MustRunner(sc).Trials(context.Background(), 20)
	if err != nil {
		log.Fatal(err)
	}
	var sum fairgossip.Summary
	for _, res := range results {
		sum.Add(res)
	}
	fmt.Printf("trials: %d, success rate: %.2f, mean rounds: %.0f\n",
		sum.Trials, sum.SuccessRate(), sum.MeanRounds())
	// Output:
	// trials: 20, success rate: 1.00, mean rounds: 73
}

// A streaming experiment with cancellation: the stream runs in memory
// bounded by the chunk size, the observer sees trials in order, and
// cancelling the context stops the run promptly mid-batch — here after the
// first chunk of what would otherwise be a million trials.
func ExampleRunner_Stream() {
	runner := fairgossip.MustRunner(fairgossip.Scenario{
		N: 32, Colors: 2, Seed: 9, Workers: 1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	observed := 0
	err := runner.Stream(ctx, fairgossip.StreamOptions{Trials: 1_000_000, Chunk: 4},
		func(trial int, res fairgossip.Result) {
			observed++
			if observed == 4 {
				cancel() // seen enough
			}
		})
	fmt.Printf("observed %d of 1000000 trials, cancelled: %v\n",
		observed, errors.Is(err, context.Canceled))
	// Output:
	// observed 4 of 1000000 trials, cancelled: true
}

// A dynamic topology: the communication graph is a per-round graph process
// (here every potential edge is an independent birth/death Markov chain), so
// who can talk to whom changes while the protocol runs. The evolution is
// derived from each trial's seed — dynamic experiments reproduce exactly,
// and the wire form carries the process so anyone can replay them. Even this
// gentle churn (0.5% of present edges dying per round) costs the protocol
// runs: votes are pushed to peers declared up to 2q rounds earlier, and a
// vote lost to a dead edge leaves a binding declaration unfulfilled.
func ExampleScenario_dynamics() {
	sc := fairgossip.Scenario{
		N: 64, Colors: 2, Seed: 11,
		Dynamics: fairgossip.Dynamics{
			Kind:  fairgossip.DynamicsEdgeMarkovian,
			Birth: 0.001, Death: 0.005, // stationary degree ≈ (n−1)/6
		},
	}
	var sum fairgossip.Summary
	results, err := fairgossip.MustRunner(sc).Trials(context.Background(), 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		sum.Add(res)
	}
	doc, err := fairgossip.Encode(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success rate under churn: %.1f\n", sum.SuccessRate())
	fmt.Printf("wire form mentions %q: %v\n", "edge-markovian",
		strings.Contains(string(doc), "edge-markovian"))
	// Output:
	// success rate under churn: 0.1
	// wire form mentions "edge-markovian": true
}

// Protocol variants: the same lossy setting that fails under the paper's
// strict verification succeeds under relaxed k-of-q verification, and the
// variant travels on the wire like any other scenario axis.
func ExampleScenario_protocol() {
	strict := fairgossip.Scenario{
		N: 64, Colors: 2, Seed: 11,
		Fault: fairgossip.FaultModel{Drop: 0.05}, // 5% per-message loss
	}
	relaxed := strict
	relaxed.Protocol = fairgossip.Protocol{
		Variant:  fairgossip.ProtocolRelaxed,
		MinVotes: 14, // tolerate up to q−14 violating voters per verifier
	}
	rate := func(sc fairgossip.Scenario) float64 {
		var sum fairgossip.Summary
		results, err := fairgossip.MustRunner(sc).Trials(context.Background(), 10)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range results {
			sum.Add(res)
		}
		return sum.SuccessRate()
	}
	doc, err := fairgossip.Encode(relaxed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strict verification under 5%% loss: %.1f\n", rate(strict))
	fmt.Printf("relaxed verification under 5%% loss: %.1f\n", rate(relaxed))
	fmt.Printf("wire form mentions %q: %v\n", "relaxed",
		strings.Contains(string(doc), "relaxed"))
	// Output:
	// strict verification under 5% loss: 0.0
	// relaxed verification under 5% loss: 1.0
	// wire form mentions "relaxed": true
}

// The runtime: RunLive executes the same scenario on the goroutine-per-node
// message-passing runtime — every agent its own goroutine, every message a
// real delivery — and returns the identical Result plus the physical-layer
// observables (wall-clock, per-message latency) a simulated run cannot
// measure. The example prints only the deterministic fields; wall-clock and
// latency vary run to run.
func ExampleScenario_runtime() {
	sc := fairgossip.Scenario{N: 64, Colors: 2, Seed: 11}
	r := fairgossip.MustRunner(sc)
	sim, err := r.RunSeed(context.Background(), sc.Seed)
	if err != nil {
		log.Fatal(err)
	}
	live, err := r.RunLive(context.Background(), fairgossip.LiveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live result matches simulator: %v\n", live.Result == sim)
	fmt.Printf("rounds: %d\n", live.Result.Rounds)
	fmt.Printf("measured real deliveries: %v\n", live.Delivered > 0 && live.WallClock > 0)
	// Output:
	// live result matches simulator: true
	// rounds: 73
	// measured real deliveries: true
}

// The wire format: a version-1 JSON document decodes into a validated,
// defaults-applied scenario ready to run.
func ExampleDecode() {
	doc := []byte(`{
	  "version": 1,
	  "n": 64,
	  "fault": {"kind": "permanent", "alpha": 0.25},
	  "seed": 3
	}`)
	sc, err := fairgossip.Decode(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defaults applied: colors=%d gamma=%g topology=%s scheduler=%s\n",
		sc.Colors, sc.Gamma, sc.Topology, sc.Scheduler)
	res, err := fairgossip.MustRunner(sc).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outcome: %s\n", res)
	// Output:
	// defaults applied: colors=2 gamma=3 topology=complete scheduler=sync
	// outcome: color(1) in 73 rounds
}
