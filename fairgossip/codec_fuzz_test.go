package fairgossip_test

import (
	"reflect"
	"testing"

	"repro/fairgossip"
)

// FuzzDecode drives the strict codec with arbitrary documents. Anything
// Decode accepts must satisfy the public contract: the result validates,
// re-encodes canonically, and the canonical form round-trips to an
// identical scenario (idempotence). Everything else must be rejected
// without panicking.
func FuzzDecode(f *testing.F) {
	for _, name := range fairgossip.Names() {
		s, err := fairgossip.Lookup(name)
		if err != nil {
			f.Fatal(err)
		}
		data, err := fairgossip.Encode(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"n":64,"seed":3}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"fault":{"kind":"crash","alpha":0.25,"round":30}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"fault":{"drop":0.2}}`))
	f.Add([]byte(`{"version":1,"n":96,"seed":1,"scheduler":"async","gamma":9.5}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{"kind":"edge-markovian","birth":0.02,"death":0.1}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{"kind":"rewire-ring","beta":0.3}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{"kind":"none"}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{"kind":"edge-markovian","birth":2}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{"kind":"d-regular","degree":4}}`))
	f.Add([]byte(`{"version":1,"n":63,"seed":1,"dynamics":{"kind":"d-regular","degree":3}}`))
	f.Add([]byte(`{"version":1,"n":256,"seed":1,"dynamics":{"kind":"geometric","degree":12,"jitter":0.01}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{"kind":"geometric","degree":63}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{"kind":"edge-markovian","birth":0.1,"death":0.1,"degree":4}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":null}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"topology":"ring","dynamics":{"kind":"rewire-ring"}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"protocol":{"variant":"live-retarget"}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"protocol":{"variant":"retransmit","ttl":3}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"fault":{"drop":0.05},"protocol":{"variant":"relaxed","min_votes":14}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"protocol":{"variant":"baseline"}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"protocol":{}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"protocol":null}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"protocol":{"variant":"relaxed","min_votes":999}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"scheduler":"async","protocol":{"variant":"live-retarget"}}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"dynamics":{"kind":"edge-markovian","birth":0.02,"death":0.1},"protocol":{"variant":"live-retarget"}}`))
	f.Add([]byte(`{"version":2,"n":64,"seed":1}`))
	f.Add([]byte(`{"n":64}`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1} trailing`))
	f.Add([]byte(`{"version":1,"n":64,"seed":1,"unknown_field":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := fairgossip.Decode(data)
		if err != nil {
			return // rejected without panicking — fine
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid scenario %+v: %v", s, err)
		}
		if !reflect.DeepEqual(s, s.WithDefaults()) {
			t.Fatalf("Decode returned a non-defaulted scenario %+v", s)
		}
		enc, err := fairgossip.Encode(s)
		if err != nil {
			t.Fatalf("decoded scenario %+v does not re-encode: %v", s, err)
		}
		s2, err := fairgossip.Decode(enc)
		if err != nil {
			t.Fatalf("canonical form of %+v does not decode: %v\n%s", s, err, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("codec not idempotent: %+v != %+v", s, s2)
		}
	})
}
