package fairgossip

import (
	"context"
	"io"
	"time"

	"repro/internal/runtime"
	"repro/internal/runtime/netconduit"
	"repro/internal/scenario"
)

// LiveOptions configures one RunLive execution on the message-passing
// runtime.
type LiveOptions struct {
	// Seed overrides the scenario seed when non-zero.
	Seed uint64
	// Transport selects the conduit messages cross: "" or "channel" is the
	// in-process channel handoff; "unix" and "tcp" carry every delivery over
	// a real loopback socket (Unix-domain or TCP) as length-prefixed binary
	// frames. All three are transcript-equivalent — the protocol outcome for
	// a given seed does not depend on the transport — but the wall-clock and
	// latency observables price each rung differently. Any other value is an
	// error wrapping ErrInvalidScenario.
	Transport string
	// TransportDrop adds a per-message transport-level loss probability in
	// [0, 1) on top of the scenario's FaultModel.Drop. The transport draws
	// from its own seed-derived stream, so lossy live runs repeat
	// bit-for-bit.
	TransportDrop float64
	// Jitter delays each delivered message by a uniform [0, Jitter) amount,
	// spreading the latency distribution; 0 keeps the in-process transport's
	// native latency.
	Jitter time.Duration
	// Mailbox is the per-node inbox capacity (backpressure bound); 0 picks
	// the runtime default.
	Mailbox int
}

// LiveReport is the outcome of one RunLive execution: the same detached
// Result a simulator run produces, plus the runtime-layer observables that
// only exist once messages really move — wall-clock convergence time and
// per-message delivery-latency quantiles.
type LiveReport struct {
	// Result is the protocol outcome; with default options it is identical
	// to RunSeed's for the same seed.
	Result Result
	// WallClock is the total execution time.
	WallClock time.Duration
	// Delivered counts the payload messages the transport carried to a
	// handler; per-kind counts split it by message type.
	Delivered                       int64
	Pushes, Votes, Queries, Replies int64
	// Streaming latency quantiles over the delivered payload messages.
	LatencyP50, LatencyP99, LatencyMax time.Duration
}

// RunLive executes the scenario once on the goroutine-per-node
// message-passing runtime instead of the simulator: every agent runs on its
// own goroutine with a bounded mailbox, and every message crosses the
// selected transport — an in-process channel by default, a real loopback
// socket with LiveOptions.Transport. With zero options the execution is
// transcript-equivalent to the simulator — same outcome, rounds, and
// communication metrics for the same seed — so findings transfer between
// the two engines; the report adds the wall-clock and latency measurements
// the simulator cannot make.
//
// RunLive requires a cooperative synchronous scenario: the async scheduler
// and coalition scenarios return an error wrapping ErrInvalidScenario.
// Cancelling ctx stops the run at the next round boundary.
func (r *Runner) RunLive(ctx context.Context, opts LiveOptions) (LiveReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.s.Scheduler == SchedulerAsync {
		return LiveReport{}, invalidf("RunLive requires the synchronous scheduler")
	}
	if r.s.Coalition > 0 {
		return LiveReport{}, invalidf("RunLive does not support coalition scenarios")
	}
	if opts.TransportDrop < 0 || opts.TransportDrop >= 1 {
		return LiveReport{}, invalidf("transport drop probability %v outside [0, 1)", opts.TransportDrop)
	}
	if opts.Jitter < 0 {
		return LiveReport{}, invalidf("negative transport jitter %v", opts.Jitter)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = r.s.Seed
	}
	var conduit runtime.Conduit
	var transport io.Closer
	switch opts.Transport {
	case "", "channel":
		// In-process handoff: nothing to open, nothing to close.
	case "unix", "tcp":
		sc, err := netconduit.Listen(opts.Transport)
		if err != nil {
			return LiveReport{}, err
		}
		conduit, transport = sc, sc
	default:
		return LiveReport{}, invalidf("unknown transport %q (want channel, unix, or tcp)", opts.Transport)
	}
	if opts.TransportDrop > 0 || opts.Jitter > 0 {
		conduit = runtime.NewFaultConduit(conduit, seed, opts.TransportDrop, opts.Jitter)
	}
	res, live, err := runtime.Execute(ctx, r.inner.RunConfig(seed), runtime.Options{
		Conduit: conduit,
		Mailbox: opts.Mailbox,
	})
	if err != nil {
		if transport != nil {
			// Execute closes the conduit once a Runtime owns it; an error
			// before that point (bad config, cancelled run) must not leak the
			// listener. Close is idempotent, so the overlap is harmless.
			transport.Close() //nolint:errcheck // best-effort teardown
		}
		return LiveReport{}, err
	}
	return LiveReport{
		Result: resultFromInternal(scenario.Result{
			Outcome: res.Outcome,
			Rounds:  res.Rounds,
			Metrics: res.Metrics,
			Good:    res.Good,
			HasGood: true,
		}),
		WallClock:  live.WallClock,
		Delivered:  live.Delivered,
		Pushes:     live.Pushes,
		Votes:      live.Votes,
		Queries:    live.Queries,
		Replies:    live.Replies,
		LatencyP50: live.LatencyP50,
		LatencyP99: live.LatencyP99,
		LatencyMax: live.LatencyMax,
	}, nil
}
