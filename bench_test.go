package repro_test

// One benchmark per experiment artifact (see DESIGN.md §3 and
// EXPERIMENTS.md). Each benchmark times the experiment's unit of work — a
// single protocol execution under that experiment's workload — and reports
// the metric the corresponding table tracks via b.ReportMetric, so
// `go test -bench=.` regenerates the per-run numbers behind every table.

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/rational"
	"repro/internal/scenario"
	"repro/internal/topo"
)

// benchRun executes one cooperative protocol run and reports rounds.
func benchRun(b *testing.B, n int, gamma float64, alpha float64) core.RunResult {
	b.Helper()
	p := core.MustParams(n, 2, gamma)
	colors := core.UniformColors(n, 2)
	var faulty []bool
	if alpha > 0 {
		faulty = core.WorstCaseFaults(n, alpha)
	}
	var last core.RunResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.RunConfig{
			Params: p, Colors: colors, Faulty: faulty,
			Seed: uint64(i) + 1, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	return last
}

// BenchmarkT1Rounds measures the T1 workload unit: one fault-free execution
// at n = 1024; the reported "rounds" metric is the T1 observable.
func BenchmarkT1Rounds(b *testing.B) {
	res := benchRun(b, 1024, 2, 0)
	b.ReportMetric(float64(res.Rounds), "rounds")
}

// BenchmarkT2MessageSize reports the largest message of a run (the T2
// observable, claimed O(log² n) bits).
func BenchmarkT2MessageSize(b *testing.B) {
	res := benchRun(b, 1024, 2, 0)
	b.ReportMetric(float64(res.Metrics.MaxMessageBits), "maxMsgBits")
}

// BenchmarkT3Communication reports messages and total bits per execution
// (the T3 observables, claimed o(n²) and O(n log³ n)).
func BenchmarkT3Communication(b *testing.B) {
	res := benchRun(b, 1024, 2, 0)
	b.ReportMetric(float64(res.Metrics.Messages), "msgs")
	b.ReportMetric(float64(res.Metrics.Bits), "bits")
}

// BenchmarkT3LocalBaseline is the Ω(n²) LOCAL-model comparison point.
func BenchmarkT3LocalBaseline(b *testing.B) {
	colors := core.UniformColors(1024, 2)
	b.ReportAllocs()
	var msgs int
	for i := 0; i < b.N; i++ {
		res, err := baseline.RunLocalSum(baseline.LocalSumConfig{
			N: 1024, Colors: colors, Seed: uint64(i) + 1, CommitReveal: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Messages
	}
	b.ReportMetric(float64(msgs), "msgs")
}

// BenchmarkT4Fairness times the T4 Monte-Carlo unit: one n = 512 execution
// with a 2-color split (the fairness experiment runs thousands of these).
func BenchmarkT4Fairness(b *testing.B) {
	p := core.MustParams(512, 2, core.DefaultGamma)
	colors := core.SplitColors(512, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.RunConfig{
			Params: p, Colors: colors, Seed: uint64(i) + 1, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT5Faults times the T5 unit: one execution with α = 0.4 worst-case
// permanent faults.
func BenchmarkT5Faults(b *testing.B) {
	res := benchRun(b, 512, core.DefaultGamma, 0.4)
	if res.Outcome.Failed {
		b.Log("run failed (rare but possible under faults)")
	}
}

// BenchmarkT6Equilibrium times the T6 unit: one game against a 4-member
// min-k-liar coalition.
func BenchmarkT6Equilibrium(b *testing.B) {
	p := core.MustParams(512, 2, core.DefaultGamma)
	colors := core.UniformColors(512, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rational.RunGame(rational.GameConfig{
			Params: p, Colors: colors,
			Coalition: []int{1, 128, 256, 384},
			Deviation: rational.MinKLiar{},
			Seed:      uint64(i) + 1, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT7Ablation times the T7 unit: one naive min-gossip run with a
// liar (the protocol Protocol P's machinery is compared against).
func BenchmarkT7Ablation(b *testing.B) {
	p := core.MustParams(512, 2, core.DefaultGamma)
	colors := core.UniformColors(512, 2)
	b.ReportAllocs()
	var liarWins int
	for i := 0; i < b.N; i++ {
		res, err := baseline.RunNaive(baseline.NaiveConfig{
			Params: p, Colors: colors, Seed: uint64(i) + 1, HasLiar: true, Liar: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.LiarWon {
			liarWins++
		}
	}
	b.ReportMetric(float64(liarWins)/float64(b.N), "liarWinRate")
}

// BenchmarkT8Baselines times the Hassin–Peleg polling baseline (the slow,
// Θ(n)-round comparator of T8).
func BenchmarkT8Baselines(b *testing.B) {
	colors := core.SplitColors(512, 0.5)
	b.ReportAllocs()
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := baseline.RunPolling(baseline.PollingConfig{
			N: 512, NumColors: 2, Colors: colors, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE9Topologies times one execution on a random 8-regular graph
// (open problem 1's favourable case).
func BenchmarkE9Topologies(b *testing.B) {
	const n = 512
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	net := topo.NewRandomRegular(n, 8, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.RunConfig{
			Params: p, Colors: colors, Seed: uint64(i) + 1, Workers: 1, Topology: net,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10Async times one sequential-GOSSIP execution (open problem 2)
// and reports ticks per run.
func BenchmarkE10Async(b *testing.B) {
	const n = 128
	p := core.MustParams(n, 2, core.DefaultAsyncGamma)
	colors := core.UniformColors(n, 2)
	b.ReportAllocs()
	var ticks int
	for i := 0; i < b.N; i++ {
		_, tk, err := core.RunAsync(core.AsyncRunConfig{
			Params: p, Colors: colors, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		ticks = tk
	}
	b.ReportMetric(float64(ticks), "ticks")
}

// BenchmarkE11Scaling times one game against a half-the-network cert-forger
// coalition (the E11 boundary probe).
func BenchmarkE11Scaling(b *testing.B) {
	const n = 256
	p := core.MustParams(n, 2, core.DefaultGamma)
	colors := core.UniformColors(n, 2)
	coalition := make([]int, n/2)
	for i := range coalition {
		coalition[i] = i + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rational.RunGame(rational.GameConfig{
			Params: p, Colors: colors,
			Coalition: coalition, Deviation: rational.CertForger{},
			Seed: uint64(i) + 1, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioRunnerBatch times the scenario layer's seed-batched
// Monte-Carlo path — the unit of work behind every sweep cell and experiment
// table since the executors were unified. The per-op time is one 8-trial
// batch at n = 256; the workers=N sub-table shows how trial-level parallelism
// scales now that trial state is pooled per worker and counters are sharded.
// The CI bench gate tracks the serial workers=1 sub-benchmark against
// BENCH_BASELINE.json — its allocation counts are machine-independent,
// unlike the parallel rows, whose per-chunk goroutine state scales with
// GOMAXPROCS (workers=0 = all CPUs).
func BenchmarkScenarioRunnerBatch(b *testing.B) {
	for _, w := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchScenarioBatch(b, w, scenario.Protocol{})
		})
	}
	// The variant sub-table runs the same n = 256 batch serially, one row per
	// protocol variant, so the cost of each relaxation shows up side by side
	// with the gated workers=1 default row: live-retarget and relaxed must
	// track it (same schedule, different checks), while retransmit's extra
	// voting passes buy its redundancy with ~ttl/3 more rounds and messages.
	// These rows are deliberately named variant=... — the CI gate's -require
	// pattern matches rows ending in workers=1, and the variant rows are
	// informational, not gated.
	for _, v := range []struct {
		name  string
		proto scenario.Protocol
	}{
		{"live-retarget", scenario.Protocol{Variant: scenario.ProtocolLiveRetarget}},
		{"retransmit", scenario.Protocol{Variant: scenario.ProtocolRetransmit, TTL: 3}},
		{"relaxed", scenario.Protocol{Variant: scenario.ProtocolRelaxed, MinVotes: 20}},
	} {
		b.Run("variant="+v.name, func(b *testing.B) {
			benchScenarioBatch(b, 1, v.proto)
		})
	}
}

func benchScenarioBatch(b *testing.B, workers int, proto scenario.Protocol) {
	const trialsPerBatch = 8
	runner, err := scenario.NewRunner(scenario.Scenario{
		N: 256, Colors: 2, Seed: 1, Workers: workers,
		Fault:    scenario.FaultModel{Kind: scenario.FaultPermanent, Alpha: 0.3},
		Protocol: proto,
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]scenario.Result, trialsPerBatch)
	b.ReportAllocs()
	b.ResetTimer()
	fails := 0
	for i := 0; i < b.N; i++ {
		if err := runner.TrialsInto(buf); err != nil {
			b.Fatal(err)
		}
		for _, r := range buf {
			if r.Outcome.Failed {
				fails++
			}
		}
	}
	b.ReportMetric(float64(fails)/float64(b.N*trialsPerBatch), "failRate")
}

// BenchmarkDynamicScenarioBatch times the dynamic-topology batch path: the
// same 8-trial unit of work as BenchmarkScenarioRunnerBatch, but with the
// edge-Markovian graph process advancing every round. The operating point is
// the low-churn regime the E12 finding cares about — death = 0.1%/round at
// the stationary degree (n−1)/6 ≈ 42 (birth = death/5) — where almost no
// edges flip per round, so the graph process should cost O(flips), not
// O(n²). Like the static batch, the CI bench gate tracks the serial
// workers=1 sub-benchmark against BENCH_BASELINE.json.
func BenchmarkDynamicScenarioBatch(b *testing.B) {
	for _, w := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchDynamicBatch(b, w)
		})
	}
}

func benchDynamicBatch(b *testing.B, workers int) {
	const trialsPerBatch = 8
	runner, err := scenario.NewRunner(scenario.Scenario{
		N: 256, Colors: 2, Seed: 1, Workers: workers,
		Dynamics: scenario.Dynamics{Kind: scenario.DynamicsEdgeMarkovian, Birth: 0.0002, Death: 0.001},
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]scenario.Result, trialsPerBatch)
	// Warm the worker pools (agents, RNG streams, the pooled graph process
	// and its adjacency high-water mark) outside the measurement, so the
	// reported allocs/op is the b.N-independent steady state the baseline
	// gate can pin tightly rather than warm-up amortized over however many
	// iterations this machine happens to run.
	if err := runner.TrialsInto(buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	fails := 0
	for i := 0; i < b.N; i++ {
		if err := runner.TrialsInto(buf); err != nil {
			b.Fatal(err)
		}
		for _, r := range buf {
			if r.Outcome.Failed {
				fails++
			}
		}
	}
	b.ReportMetric(float64(fails)/float64(b.N*trialsPerBatch), "failRate")
}

// BenchmarkEdgeMarkovianAdvance isolates the graph process itself: one op is
// one Advance of an edge-Markovian chain at fixed stationary degree 64 (the
// sparse regime the engine targets; π = 64/(n−1) falls as n grows), across
// an (n × death-rate) grid, plus a rewire-ring row for the other process.
// The reported flips/op metric is the number of edges that actually changed,
// so the table makes the Θ(flips)-vs-Θ(n²) claim checkable in every bench
// run: at fixed degree, flips/op grows only linearly in n (≈ 2·death·32n)
// and ns/op must track it — the dense engine this replaced paid Θ(n²) per
// op at every churn rate (e.g. ~134M pair draws per op at n = 16384).
func BenchmarkEdgeMarkovianAdvance(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		for _, death := range []float64{0.001, 0.01, 0.1} {
			b.Run(fmt.Sprintf("n=%d/death=%g", n, death), func(b *testing.B) {
				pi := 64.0 / float64(n-1)
				g := topo.NewEdgeMarkovian(n, death*pi/(1-pi), death)
				g.Start(1)
				b.ReportAllocs()
				b.ResetTimer()
				flips := 0
				for i := 0; i < b.N; i++ {
					g.Advance(i + 1)
					flips += g.Flips()
				}
				b.ReportMetric(float64(flips)/float64(b.N), "flips/op")
			})
		}
	}
	b.Run("rewire-ring/n=4096", func(b *testing.B) {
		g := topo.NewRewireRing(4096, 0.2)
		g.Start(1)
		b.ReportAllocs()
		b.ResetTimer()
		flips := 0
		for i := 0; i < b.N; i++ {
			g.Advance(i + 1)
			flips += g.Flips()
		}
		b.ReportMetric(float64(flips)/float64(b.N), "flips/op")
	})
}

// BenchmarkSparseGeneratorAdvance isolates the implicit sparse generators:
// one op is one Advance — a full stub rematch for the random d-regular
// process, a jittered point drift plus cell-grid rebuild for the geometric
// torus. Both pay Θ(n·deg) per round by construction (every edge turns over,
// or every point moves), so unlike EdgeMarkovianAdvance there is no
// churn-rate axis to sweep — the degree is the only knob.
func BenchmarkSparseGeneratorAdvance(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("d-regular/n=%d/d=8", n), func(b *testing.B) {
			g := topo.NewDRegular(n, 8)
			g.Start(1)
			b.ReportAllocs()
			b.ResetTimer()
			flips := 0
			for i := 0; i < b.N; i++ {
				g.Advance(i + 1)
				flips += g.Flips()
			}
			b.ReportMetric(float64(flips)/float64(b.N), "flips/op")
		})
		b.Run(fmt.Sprintf("geometric/n=%d/deg=8", n), func(b *testing.B) {
			g := topo.NewGeometric(n, 8, 0.01)
			g.Start(1)
			b.ReportAllocs()
			b.ResetTimer()
			flips := 0
			for i := 0; i < b.N; i++ {
				g.Advance(i + 1)
				flips += g.Flips()
			}
			b.ReportMetric(float64(flips)/float64(b.N), "flips/op")
		})
	}
}

// BenchmarkProtocolScaling provides the per-n cost curve behind T1–T3.
func BenchmarkProtocolScaling(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRun(b, n, 2, 0)
		})
	}
}
