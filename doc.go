// Package repro is a from-scratch Go implementation of "Rational Fair
// Consensus in the GOSSIP Model" (Clementi, Gualà, Proietti, Scornavacca,
// 2017): a randomized GOSSIP protocol that reaches fair consensus on the
// complete graph in O(log n) rounds with O(log² n)-bit messages, tolerates
// any constant fraction of worst-case permanent faults, and is a whp
// t-strong equilibrium against coalitions of t = o(n/log n) rational agents.
//
// The implementation lives under internal/, organized as three layers:
//
// Engine layer. internal/gossip holds one executor implementing the GOSSIP
// delivery semantics (push/pull, self-op short-circuiting, fault silence,
// trace emission, bit accounting) exactly once, with two thin schedulers
// over it: the synchronous Engine and the sequential (one random agent per
// tick) AsyncEngine. Fault models are pluggable FaultSchedules: permanent
// quiescence, crash-at-round-r, and periodic churn.
//
// Protocol layer. internal/core is Protocol P and its sequential-model
// adaptation; internal/rational adds utilities, coalitions, and the
// deviation library; internal/baseline holds the LOCAL-model election, HP
// polling, and naive ablation comparators.
//
// Scenario layer. internal/scenario is the declarative front door: a
// Scenario struct names the full setting (N, initial-opinion distribution —
// uniform, split, Zipf-skewed, or leader-election —, γ, topology, fault
// model, scheduler, coalition + deviation, seed), a registry holds named
// settings, and a Runner executes single runs or seed-batched Monte-Carlo
// trials through one code path. Every CLI, example, and experiment table
// builds its runs from a Scenario; new axes are one-field additions.
//
// Performance model. The Monte-Carlo hot path is pooled and (nearly)
// allocation-free at steady state: published payloads are immutable, so the
// Find-Min adopt path passes certificate pointers instead of deep-copying;
// agents, their RNG streams (rng.Source.SplitInto), commitment logs, and the
// engine's per-round buffers live in per-worker core.RunPools that
// Runner.Trials/TrialsInto/Stream reset between trials; and metrics.Counters
// is sharded into padded per-worker cells merged at Snapshot time, so
// concurrent accounting never contends on a cache line. Ownership rule:
// batched Results carry plain values only (never Agents — those are recycled
// with the pool), while single Run/RunSeed results stay fully inspectable.
// Allocation-budget tests (testing.AllocsPerRun) pin the steady state, and
// CI gates `go test -bench=ScenarioRunnerBatch` against the committed
// BENCH_BASELINE.json via cmd/benchdiff.
//
// For experiments too large to materialize, Runner.Stream executes trials in
// bounded memory — chunked batches feeding an in-order observer — and
// internal/stats provides the matching streaming statistics (Running Welford
// moments, IntMedian counting histograms); `cmd/sweep -stream -checkpoint K`
// runs million-trial cells in constant memory with periodic partial
// aggregates on stderr.
//
// Supporting substrates: internal/sim (experiment tables T0–T8, E9–E11),
// internal/topo (complete / ring / regular / Erdős–Rényi graphs),
// internal/rng (splittable xoshiro256**), internal/stats, internal/metrics,
// internal/par, internal/trace, internal/wire.
//
// Entry points: cmd/fairconsensus (single runs, -scenario by name),
// cmd/experiments (regenerate every table/figure, or Monte-Carlo one
// scenario), cmd/sweep (CSV scaling sweeps), cmd/inspect (per-agent
// transcripts), cmd/benchdiff (benchmark regression gate), and the runnable
// walkthroughs under examples/. The root bench_test.go holds one benchmark
// per experiment artifact plus the scenario batch baseline.
package repro
