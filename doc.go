// Package repro is a from-scratch Go implementation of "Rational Fair
// Consensus in the GOSSIP Model" (Clementi, Gualà, Proietti, Scornavacca,
// 2017): a randomized GOSSIP protocol that reaches fair consensus on the
// complete graph in O(log n) rounds with O(log² n)-bit messages, tolerates
// any constant fraction of worst-case permanent faults, and is a whp
// t-strong equilibrium against coalitions of t = o(n/log n) rational agents.
//
// The implementation lives under internal/, organized as three layers:
//
// Engine layer. internal/gossip holds one executor implementing the GOSSIP
// delivery semantics (push/pull, self-op short-circuiting, fault silence,
// trace emission, bit accounting) exactly once, with two thin schedulers
// over it: the synchronous Engine and the sequential (one random agent per
// tick) AsyncEngine. Fault models are pluggable FaultSchedules: permanent
// quiescence, crash-at-round-r, and periodic churn.
//
// Protocol layer. internal/core is Protocol P and its sequential-model
// adaptation; internal/rational adds utilities, coalitions, and the
// deviation library; internal/baseline holds the LOCAL-model election, HP
// polling, and naive ablation comparators.
//
// Scenario layer. internal/scenario is the declarative front door: a
// Scenario struct names the full setting (N, initial-opinion distribution —
// uniform, split, Zipf-skewed, or leader-election —, γ, topology, fault
// model, scheduler, coalition + deviation, seed), a registry holds named
// settings, and a Runner executes single runs or seed-batched Monte-Carlo
// trials through one code path. Every CLI, example, and experiment table
// builds its runs from a Scenario; new axes are one-field additions.
//
// Supporting substrates: internal/sim (experiment tables T0–T8, E9–E11),
// internal/topo (complete / ring / regular / Erdős–Rényi graphs),
// internal/rng (splittable xoshiro256**), internal/stats, internal/metrics,
// internal/par, internal/trace, internal/wire.
//
// Entry points: cmd/fairconsensus (single runs, -scenario by name),
// cmd/experiments (regenerate every table/figure, or Monte-Carlo one
// scenario), cmd/sweep (CSV scaling sweeps), cmd/inspect (per-agent
// transcripts), and the runnable walkthroughs under examples/. The root
// bench_test.go holds one benchmark per experiment artifact plus the
// scenario batch baseline.
package repro
