// Package repro is a from-scratch Go implementation of "Rational Fair
// Consensus in the GOSSIP Model" (Clementi, Gualà, Proietti, Scornavacca,
// 2017): a randomized GOSSIP protocol that reaches fair consensus on the
// complete graph in O(log n) rounds with O(log² n)-bit messages, tolerates
// any constant fraction of worst-case permanent faults, and is a whp
// t-strong equilibrium against coalitions of t = o(n/log n) rational agents.
//
// # Public API
//
// The supported surface is the fairgossip package — a versioned, public
// re-export of the scenario layer. It offers the declarative Scenario type
// (network size, initial-opinion distribution, γ, topology — static or a
// per-round evolving graph process via Dynamics, protocol variant via
// Protocol — live-retarget, TTL retransmission, or relaxed k-of-q
// verification, each trading part of the binding declarations for delivery
// robustness, fault model including probabilistic message loss, scheduler,
// coalition, seed), a
// strict version-1 JSON wire format (Encode / Decode, with the invariant
// Decode(Encode(s)) == s.WithDefaults()), a registry of named settings, a
// typed error taxonomy (ErrInvalidScenario, ErrUnknownScenario, wrapped
// context errors), and context-aware execution: Runner.Run, Trials, and
// Stream all take a Context and cancel promptly mid-batch. Results are
// detached snapshots of plain values that never alias pooled memory.
// fairgossip's exported signatures mention no internal types; everything
// under internal/ remains free to change.
//
// cmd/serve is the API's first external consumer: an HTTP front end whose
// POST /v1/runs takes scenario JSON (or a registered name) plus a trial
// count and returns the aggregate summary, with the request context
// cancelling abandoned batches.
//
// # Internal architecture
//
// The implementation lives under internal/, organized as three layers:
//
// Engine layer. internal/gossip holds one executor implementing the GOSSIP
// delivery semantics (push/pull, self-op short-circuiting, fault silence,
// probabilistic per-message loss, trace emission, bit accounting) exactly
// once, with two thin schedulers over it: the synchronous Engine and the
// sequential (one random agent per tick) AsyncEngine. Fault models are
// pluggable FaultSchedules — permanent quiescence, crash-at-round-r,
// periodic churn — and the orthogonal Drop rate loses any message crossing
// a link with fixed probability from a seed-derived stream. Topologies may
// themselves be dynamic: a topo.Dynamic graph process (edge-Markovian
// chains, the per-round rewiring ring, a per-round re-matched random
// d-regular graph, a geometric torus under positional jitter) is started
// from the run seed and advanced by the engine at every round boundary, so
// partner selection and delivery validation always read the round's live
// edge set. The edge-Markovian engine is sparse end to end — geometric
// skip-sampling draws exactly the edges that flip, the adjacency updates
// incrementally, and membership is an O(present-edges) hash set over packed
// pair ids rather than an n²/8 presence bitset — so a round costs O(flips),
// memory costs O(edges), and churn experiments scale to n = 2²⁰ (E13 sweeps
// n ∈ {10⁵, 10⁶} at fixed degree).
//
// Protocol layer. internal/core is Protocol P and its sequential-model
// adaptation, including the three protocol variants (core.Protocol): send-
// time vote retargeting, a Passes-times-repeated Voting schedule with
// receiver-side (voter, slot) dedup, and violation-counting relaxed
// verification — all threaded through Params so the schedule arithmetic
// (TotalRounds, PhaseOf) stays in one place. internal/rational adds
// utilities, coalitions, and the deviation library; internal/baseline holds
// the LOCAL-model election, HP polling, and naive ablation comparators.
//
// Runtime layer. internal/runtime is the message-passing counterpart of the
// engine layer: one goroutine per node, each draining a typed bounded
// mailbox (backpressure by blocking send), with deliveries crossing a
// pluggable Conduit — the deterministic in-process channel transport, or a
// fault-injecting wrapper adding seed-derived per-message drop and latency
// jitter below the protocol's own fault model. A round-barrier coordinator
// drives the nodes in lockstep through the same core.PrepareRun state the
// simulator uses and draws the shared loss stream in the simulator's
// delivery order, so the runtime is transcript-equivalent to the simulator:
// byte-identical trace transcripts and identical results for the same seed
// (pinned across every builtin scenario, including dynamic graphs and all
// three protocol variants). What it adds is what simulation cannot measure —
// wall-clock convergence and streaming per-message latency quantiles
// (metrics.Live, stats.QuantileSketch) — surfaced publicly as
// fairgossip.RunLive, `fairconsensus -runtime`, and the E15 table.
//
// Scenario layer. internal/scenario is the execution home of the
// declarative front door fairgossip re-exports: the Scenario struct, the
// registry (scenarios are stored defaults-applied at Register time), and
// the Runner with single runs, pooled Monte-Carlo batches, and
// bounded-memory streams (TrialsIntoContext / StreamContext carry the
// cancellation the public API exposes). internal/bridge converts public
// scenarios to internal ones for tools that need full-state access (the
// inspector's agent transcripts, trace sinks, the equilibrium evaluator).
//
// Performance model. The Monte-Carlo hot path is pooled and (nearly)
// allocation-free at steady state: published payloads are immutable, so the
// Find-Min adopt path passes certificate pointers instead of deep-copying;
// agents, their RNG streams (rng.Source.SplitInto), commitment logs, and the
// engine's per-round buffers live in per-worker core.RunPools that batched
// runs reset between trials; and metrics.Counters is sharded into padded
// per-worker cells merged at Snapshot time. Ownership rule: batched results
// carry plain values only, and the public Result type makes that structural
// (no reference fields at all). Allocation-budget tests pin the steady
// state, and CI gates `go test -bench=ScenarioRunnerBatch` against the
// committed BENCH_BASELINE.json via cmd/benchdiff.
//
// Supporting substrates: internal/sim (experiment tables T0–T8, E9–E15,
// built on the public API), internal/topo (static graphs and dynamic
// graph processes), internal/rng (splittable
// xoshiro256**), internal/stats (streaming Welford moments, counting-
// histogram medians, exponential-bucket quantile sketches), internal/metrics,
// internal/par, internal/trace, internal/wire.
//
// Entry points: cmd/serve (HTTP front end), cmd/fairconsensus (single runs;
// -scenario by name, -scenario-json documents, -dump-scenario canonical
// JSON), cmd/experiments (regenerate every table/figure, or Monte-Carlo one
// scenario), cmd/sweep (CSV scaling sweeps; SIGINT cancels mid-cell),
// cmd/inspect (per-agent transcripts), cmd/benchdiff (benchmark regression
// gate), and the runnable walkthroughs under examples/ — all built on
// fairgossip. The root bench_test.go holds one benchmark per experiment
// artifact plus the scenario batch baseline.
package repro
