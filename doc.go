// Package repro is a from-scratch Go implementation of "Rational Fair
// Consensus in the GOSSIP Model" (Clementi, Gualà, Proietti, Scornavacca,
// 2017): a randomized GOSSIP protocol that reaches fair consensus on the
// complete graph in O(log n) rounds with O(log² n)-bit messages, tolerates
// any constant fraction of worst-case permanent faults, and is a whp
// t-strong equilibrium against coalitions of t = o(n/log n) rational agents.
//
// The implementation lives under internal/:
//
//	internal/gossip   — the synchronous (and sequential) GOSSIP engines
//	internal/core     — Protocol P and its sequential-model adaptation
//	internal/rational — utilities, coalitions, and the deviation library
//	internal/baseline — LOCAL-model election, HP polling, naive ablation
//	internal/sim      — the experiment harness (tables T1–T8, E9–E10)
//	internal/topo     — complete / ring / regular / Erdős–Rényi topologies
//	internal/rng, internal/stats, internal/metrics, internal/par,
//	internal/trace    — supporting substrates
//
// Entry points: cmd/fairconsensus (single runs), cmd/experiments
// (regenerate every table/figure), cmd/sweep (CSV scaling sweeps), and the
// runnable walkthroughs under examples/. The root bench_test.go holds one
// benchmark per experiment artifact.
package repro
